package matchmaker

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/classad"
	"repro/internal/collector"
)

// TestStressNegotiateAgainstMutatingStore exercises the weak-
// consistency model under the race detector: negotiators run indexed,
// parallel cycles against snapshots of a collector store while a
// writer concurrently adds, invalidates, and expires advertisements.
// Matchmaking decisions are made against possibly-stale snapshots and
// validated later by the claiming protocol, so the only requirements
// here are memory safety (no data races) and that every match pairs a
// request with an offer from the negotiator's own snapshot.
func TestStressNegotiateAgainstMutatingStore(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 10
	}

	// A clock the writer can advance to force lifetime expiries.
	var clock atomic.Int64
	env := &classad.Env{
		Now:  func() int64 { return clock.Load() },
		Rand: func() float64 { return 0.5 },
	}
	store := collector.New(env)

	// Seed the pool large enough that the parallel scan actually
	// shards (minParallelScan candidates after pruning).
	archs := []string{"INTEL", "SPARC", "ALPHA"}
	seedAd := func(i int) *classad.Ad {
		m := machine(fmt.Sprintf("m%d", i), archs[i%len(archs)], int64(32*(1+i%8)))
		return m
	}
	for i := 0; i < 200; i++ {
		if err := store.Update(seedAd(i), 1000); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var writerWG, wg sync.WaitGroup

	// Writer: churn the store — re-advertise with fresh ads, withdraw
	// some, advance the clock so short-lived ads expire mid-run.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		r := rand.New(rand.NewSource(99))
		for i := 0; !stop.Load(); i++ {
			switch i % 4 {
			case 0:
				_ = store.Update(seedAd(r.Intn(250)), 1000)
			case 1:
				// Short lifetime: expires on the next clock advance.
				_ = store.Update(seedAd(200+r.Intn(50)), 1)
			case 2:
				store.Invalidate(fmt.Sprintf("m%d", r.Intn(250)))
			case 3:
				clock.Add(2)
				store.Prune()
			}
		}
	}()

	// Negotiators: one Matchmaker per goroutine (usage accounting is
	// per-instance), index and parallelism forced on.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			m := New(Config{Env: env, Index: true, Parallel: 4, FairShare: g%2 == 0})
			for i := 0; i < iters; i++ {
				requests := randomRequests(r, 10)
				snapshot := store.All()
				inSnapshot := make(map[*classad.Ad]bool, len(snapshot))
				for _, off := range snapshot {
					inSnapshot[off] = true
				}
				for _, match := range m.Negotiate(requests, snapshot) {
					if !inSnapshot[match.Offer] {
						t.Errorf("negotiator %d: match offer not from its snapshot", g)
						return
					}
				}
			}
		}(g)
	}

	// Wait for the negotiators, then release and drain the writer.
	wg.Wait()
	stop.Store(true)
	writerWG.Wait()
}

// TestStressOfferIndexConcurrent hammers one shared OfferIndex with
// concurrent Add/Remove/Candidates/Len calls — the maintenance pattern
// a long-lived matchmaker would use between cycles.
func TestStressOfferIndexConcurrent(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 80
	}
	env := classad.FixedEnv(0, 1)
	ix := NewOfferIndex(nil)
	var slots [64]atomic.Int64
	for i := range slots {
		slots[i].Store(int64(ix.Add(machine(fmt.Sprintf("m%d", i), "INTEL", int64(32+i)))))
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				k := r.Intn(len(slots))
				ix.Remove(int(slots[k].Load()))
				slots[k].Store(int64(ix.Add(machine(fmt.Sprintf("m%d", k), "SPARC", int64(16+r.Intn(128))))))
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := job("u", "INTEL", 32)
			for i := 0; i < iters; i++ {
				cand, indexed := ix.Candidates(req, env)
				if !indexed {
					t.Errorf("reader %d: constraint unexpectedly not indexed", g)
					return
				}
				if n := ix.Len(); len(cand) > n+len(slots) {
					t.Errorf("reader %d: %d candidates from a %d-ad index", g, len(cand), n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
