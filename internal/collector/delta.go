package collector

// Delta advertising and the store's change feed. Two independent
// mechanisms share the machinery here:
//
//   - On the wire, an advertiser refreshes a stored ad with an
//     UPDATE_DELTA envelope carrying only changed attributes against a
//     base sequence number. The collector merges the delta into its
//     stored copy; on any sequence mismatch it rejects the delta and
//     the advertiser falls back to a full ADVERTISE, so a lost or
//     reordered delta degrades to the paper's ordinary full-ad refresh
//     rather than corrupting state.
//
//   - In process, the store publishes a change feed — one Delta per ad
//     added, changed, expired, or invalidated — over a subscription
//     seam. The event-driven negotiation engine (internal/matchmaker,
//     incremental.go) sleeps on this feed instead of a fixed cycle
//     timer. A content-identical refresh (the steady-state heartbeat)
//     publishes nothing, which is what makes the dirty set empty and
//     negotiation idle while the pool is quiet.

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/classad"
)

// ErrSeqMismatch rejects an UPDATE_DELTA whose BaseSeq does not equal
// the stored ad's sequence (or whose ad is not stored at all). The
// advertiser recovers by sending a full ADVERTISE.
var ErrSeqMismatch = errors.New("collector: delta base sequence mismatch")

// DeltaKind classifies one store change.
type DeltaKind int

const (
	// DeltaAdded: an ad appeared under a name not previously stored.
	DeltaAdded DeltaKind = iota
	// DeltaChanged: a stored ad's content changed (full re-advertise
	// with different attributes, or a merged wire delta).
	DeltaChanged
	// DeltaExpired: an ad's lifetime ran out without a refresh.
	DeltaExpired
	// DeltaInvalidated: the advertiser explicitly withdrew the ad.
	DeltaInvalidated
)

func (k DeltaKind) String() string {
	switch k {
	case DeltaAdded:
		return "added"
	case DeltaChanged:
		return "changed"
	case DeltaExpired:
		return "expired"
	case DeltaInvalidated:
		return "invalidated"
	}
	return fmt.Sprintf("DeltaKind(%d)", int(k))
}

// Delta is one published store change. Ad carries the post-change ad
// for Added/Changed and the last stored ad for Expired/Invalidated.
type Delta struct {
	Kind DeltaKind
	Name string // folded ad name
	Ad   *classad.Ad
}

// Hooks are seeded fault-injection points for the delta machinery's
// self-tests (the PR 8 modelcheck style): each hook reintroduces a
// specific bug the test suite must mechanically rediscover. All hooks
// are off in production.
type Hooks struct {
	// StaleDeltaApply makes ApplyDelta merge a delta whose BaseSeq
	// does not match the stored sequence — the classic
	// lost-update-then-patch corruption the sequence check exists to
	// prevent.
	StaleDeltaApply bool
}

// Subscription is one subscriber's view of the store's change feed:
// an unbounded FIFO the store appends to and the subscriber drains.
// Unbounded is deliberate — dropping a delta would silently undo the
// engine's dirty marking (exactly the DropDirtyNotification mutant),
// and a subscriber further behind than the ad pool is reconciled by
// the fallback full rebuild, not by backpressure on advertisers.
type Subscription struct {
	store *Store

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Delta
	closed bool
}

// Subscribe registers a new change-feed subscriber. Deltas published
// after the call are queued until Drain/Wait collects them; Close
// unregisters.
func (s *Store) Subscribe() *Subscription {
	sub := &Subscription{store: s}
	sub.cond = sync.NewCond(&sub.mu)
	s.mu.Lock()
	s.subs = append(s.subs, sub)
	s.mu.Unlock()
	return sub
}

// publishLocked fans one delta out to every subscriber. The caller
// holds s.mu; subscriber locks nest strictly inside it.
func (s *Store) publishLocked(d Delta) {
	s.version++
	for _, sub := range s.subs {
		sub.mu.Lock()
		if !sub.closed {
			sub.queue = append(sub.queue, d)
			sub.cond.Signal()
		}
		sub.mu.Unlock()
	}
}

// Drain returns and clears the queued deltas without blocking.
func (sub *Subscription) Drain() []Delta {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	out := sub.queue
	sub.queue = nil
	return out
}

// Wait blocks until at least one delta is queued or the subscription
// closes, then returns the drained queue (nil once closed).
func (sub *Subscription) Wait() []Delta {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	for len(sub.queue) == 0 && !sub.closed {
		sub.cond.Wait()
	}
	out := sub.queue
	sub.queue = nil
	return out
}

// Pending reports the queued delta count.
func (sub *Subscription) Pending() int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return len(sub.queue)
}

// Close unregisters the subscription and wakes any blocked Wait.
func (sub *Subscription) Close() {
	s := sub.store
	s.mu.Lock()
	for i, x := range s.subs {
		if x == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	sub.mu.Lock()
	sub.closed = true
	sub.cond.Broadcast()
	sub.mu.Unlock()
}

// MergeAd applies a delta — attributes to set, attributes to remove —
// to a base ad and returns the merged copy. The base is not modified
// (stored ads are immutable once published to the change feed).
func MergeAd(base, changes *classad.Ad, removed []string) *classad.Ad {
	merged := base.Copy()
	if changes != nil {
		for _, name := range changes.Names() {
			e, _ := changes.Lookup(name)
			merged.Set(name, e)
		}
	}
	for _, name := range removed {
		merged.Delete(name)
	}
	return merged
}

// DiffAds computes the delta that turns prev into next: an ad holding
// every attribute of next that is new or textually different in prev,
// and the names present in prev but gone from next. Attribute
// comparison is on unparsed expression text — the same canonical form
// the store journals — so a semantically identical re-parse never
// manufactures a spurious delta.
func DiffAds(prev, next *classad.Ad) (changes *classad.Ad, removed []string) {
	changes = classad.NewAd()
	for _, name := range next.Names() {
		ne, _ := next.Lookup(name)
		if pe, ok := prev.Lookup(name); ok && pe.String() == ne.String() {
			continue
		}
		changes.Set(name, ne)
	}
	for _, name := range prev.Names() {
		if _, ok := next.Lookup(name); !ok {
			removed = append(removed, name)
		}
	}
	return changes, removed
}

// ApplyDelta merges a wire delta into the stored ad: the entry under
// name must exist with sequence baseSeq; changes and removed are
// applied on top of it, the result stored under seq with a refreshed
// lifetime. An empty delta (no changes, no removals) is a pure
// heartbeat — it renews the lifetime and publishes nothing to the
// change feed. Any sequence mismatch (including an absent ad) returns
// ErrSeqMismatch so the advertiser falls back to a full ADVERTISE.
func (s *Store) ApplyDelta(name string, baseSeq, seq uint64, changes *classad.Ad, removed []string, lifetime int64) error {
	if lifetime <= 0 {
		lifetime = DefaultLifetime
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	key := classad.Fold(name)
	e, ok := s.ads[key]
	if !ok || e.seq != baseSeq {
		// The StaleDeltaApply mutant skips the sequence check and
		// patches whatever is stored — it still cannot patch an ad that
		// does not exist.
		if !s.Hooks.StaleDeltaApply || !ok {
			s.mDeltaMismatch.Inc()
			return fmt.Errorf("collector: ad %q: stored seq %d, delta base %d: %w",
				name, e.seq, baseSeq, ErrSeqMismatch)
		}
	}
	merged := MergeAd(e.ad, changes, removed)
	if mergedName, err := NameOf(merged); err != nil || classad.Fold(mergedName) != key {
		return fmt.Errorf("collector: delta for %q may not change the ad's Name", name)
	}
	src := merged.String()
	expires := s.env.Now() + lifetime
	s.ads[key] = entry{ad: merged, expires: expires, seq: seq, src: src}
	s.mStored.Inc()
	s.mDeltaApplied.Inc()
	deltaLen := len(removed)
	if changes != nil {
		deltaLen += len(changes.String())
	}
	if saved := len(src) - deltaLen; saved > 0 {
		s.mDeltaBytesSaved.Add(int64(saved))
	}
	s.trackDaemonLocked(merged, key, expires)
	if src != e.src {
		s.publishLocked(Delta{Kind: DeltaChanged, Name: key, Ad: merged})
	}
	return s.journalLocked(persistRecord{Op: opUpdate, Ad: src, Expires: expires, Seq: seq})
}

// Version reports the store's pool-change counter: it advances once
// per published delta (add/change/expire/invalidate), so an unchanged
// Version between two reads means no matchable state changed — the
// signal a remote negotiator uses to skip an idle negotiation cycle.
// It is not persisted; a collector restart restarts it, which any
// cached comparison simply reads as "changed".
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	return s.version
}

// Seq reports the stored sequence number for name (0 if absent or the
// advertiser was not sequence-aware).
func (s *Store) Seq(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ads[classad.Fold(name)].seq
}
