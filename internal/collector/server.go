package collector

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/classad"
	"repro/internal/classad/analysis"
	"repro/internal/netx"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Server exposes a Store over TCP using the advertising protocol:
// ADVERTISE, INVALIDATE and QUERY envelopes, one or more per
// connection, each acknowledged.
type Server struct {
	store *Store
	ln    net.Listener

	// IdleTimeout bounds how long a handler waits for the next
	// envelope on an open connection; a wedged peer times out instead
	// of pinning the goroutine. Set before Listen/Serve; defaults to
	// netx.DefaultIdleTimeout.
	IdleTimeout time.Duration
	// WriteTimeout bounds each reply write; defaults to
	// netx.DefaultIOTimeout.
	WriteTimeout time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
	logf   func(format string, args ...any)

	// Observability hooks; nil (no-op) until Instrument is called.
	events                *obs.Events
	spans                 *obs.Spans
	mQueries, mProjected  *obs.Counter
	mAdvertise, mBadFrame *obs.Counter
	mLintErrs, mLintWarns *obs.Counter
	lintReg               *obs.Registry
	gHandlers             *obs.Gauge
}

// NewServer wraps store in a protocol server. logf may be nil: the
// server then discards diagnostics (or, once Instrument is called,
// routes them into the event buffer alone). Every internal log goes
// through the nil-safe log method, so even a Server constructed as a
// bare struct literal cannot panic on a nil logger.
func NewServer(store *Store, logf func(string, ...any)) *Server {
	return &Server{
		store:        store,
		IdleTimeout:  netx.DefaultIdleTimeout,
		WriteTimeout: netx.DefaultIOTimeout,
		conns:        make(map[net.Conn]bool),
		logf:         logf,
	}
}

// Instrument routes server activity into o: queries served
// (collector_queries_total, collector_queries_projected_total),
// advertisements received (collector_advertise_total), protocol errors
// (collector_bad_frames_total), static-analysis findings on incoming
// advertisements (collector_lint_errors_total,
// collector_lint_warnings_total, and a per-code
// collector_lint_<code>_total breakdown), live handler goroutines
// (collector_handlers gauge), plus the store's own counters. Server
// diagnostics additionally land in the event buffer as src
// "collector", type "log". Call before Listen/Serve.
func (s *Server) Instrument(o *obs.Obs) {
	reg := o.Registry()
	s.mu.Lock()
	s.events = o.Events()
	s.spans = o.Spans()
	s.mQueries = reg.Counter("collector_queries_total")
	s.mProjected = reg.Counter("collector_queries_projected_total")
	s.mAdvertise = reg.Counter("collector_advertise_total")
	s.mBadFrame = reg.Counter("collector_bad_frames_total")
	s.mLintErrs = reg.Counter("collector_lint_errors_total")
	s.mLintWarns = reg.Counter("collector_lint_warnings_total")
	s.lintReg = reg
	s.gHandlers = reg.Gauge("collector_handlers")
	s.mu.Unlock()
	if s.store != nil {
		s.store.Instrument(reg)
	}
}

// log emits one diagnostic to the configured logger (when set) and to
// the event buffer (when instrumented). Safe on every Server,
// including a zero-value one.
func (s *Server) log(format string, args ...any) {
	if s.logf != nil {
		s.logf(format, args...)
	}
	if s.events != nil {
		s.events.Emit("collector", "log", "", map[string]string{
			"msg": fmt.Sprintf(format, args...),
		})
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting
// connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return s.Serve(ln), nil
}

// Serve starts accepting connections from an existing listener —
// tests wrap one in a netx.FaultListener to subject the server to
// injected failures without touching server code. It returns the
// listener's address.
func (s *Server) Serve(ln net.Listener) string {
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes live connections, and waits for
// handlers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
}

// Store returns the underlying advertisement store (the negotiator
// reads it directly when co-located, as the deployed pool manager's
// collector and negotiator are).
func (s *Server) Store() *Store { return s.store }

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	s.gHandlers.Inc()
	defer s.gHandlers.Dec()
	// Idle and write deadlines: a peer that stalls mid-conversation
	// (or a fault-injected delay) bounds out instead of holding the
	// handler goroutine hostage.
	bounded := netx.TimeoutConn(conn, s.IdleTimeout, s.WriteTimeout)
	r := bufio.NewReader(bounded)
	for {
		env, err := protocol.Read(r)
		if err != nil {
			if !quietReadError(err) {
				s.mBadFrame.Inc()
				s.log("collector: read: %v", err)
			}
			return
		}
		reply := s.dispatch(env)
		if err := protocol.Write(bounded, reply); err != nil {
			s.log("collector: write: %v", err)
			return
		}
	}
}

// quietReadError reports whether a handler read error is ordinary
// connection lifecycle (clean close, server shutdown, idle timeout)
// rather than a protocol problem worth logging.
func quietReadError(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, os.ErrDeadlineExceeded)
}

func (s *Server) dispatch(env *protocol.Envelope) *protocol.Envelope {
	switch env.Type {
	case protocol.TypeAdvertise:
		s.mAdvertise.Inc()
		ad, err := protocol.DecodeAd(env.Ad)
		if err != nil {
			return protocol.Errorf("bad advertisement: %v", err)
		}
		s.lintAd(ad)
		// Traced ads (job ads carrying a TraceId) get an ad_stored span:
		// the collector hop of the request's causal story.
		sp := s.spans.Start(classad.TraceOf(ad), classad.TraceSpanOf(ad), "collector", "ad_stored")
		if err := s.store.UpdateSeq(ad, env.Lifetime, env.Seq); err != nil {
			sp.Fail(err.Error())
			sp.End()
			return protocol.Errorf("%v", err)
		}
		if name, err := NameOf(ad); err == nil {
			sp.Set("name", name)
		}
		sp.End()
		return &protocol.Envelope{Type: protocol.TypeAck}
	case protocol.TypeUpdateDelta:
		s.mAdvertise.Inc()
		if env.Name == "" {
			return protocol.Errorf("delta update requires a name")
		}
		var changes *classad.Ad
		if env.Ad != "" {
			var err error
			if changes, err = protocol.DecodeAd(env.Ad); err != nil {
				return protocol.Errorf("bad delta: %v", err)
			}
		}
		if err := s.store.ApplyDelta(env.Name, env.BaseSeq, env.Seq, changes, env.Removed, env.Lifetime); err != nil {
			// ErrSeqMismatch rides back as an ordinary ERROR; the reason
			// text carries the sentinel the client maps back to a typed
			// error so the advertiser knows to re-send the full ad.
			return protocol.Errorf("%v", err)
		}
		return &protocol.Envelope{Type: protocol.TypeAck}
	case protocol.TypeInvalidate:
		if env.Name == "" {
			return protocol.Errorf("invalidate requires a name")
		}
		s.store.Invalidate(env.Name)
		return &protocol.Envelope{Type: protocol.TypeAck}
	case protocol.TypeQuery:
		s.mQueries.Inc()
		query, err := protocol.DecodeAd(env.Ad)
		if err != nil {
			return protocol.Errorf("bad query: %v", err)
		}
		var matches []*classad.Ad
		if len(env.Projection) > 0 {
			// Projected queries ship only the named attributes; the
			// ratio projected/total is the projection hit rate.
			s.mProjected.Inc()
			matches = s.store.QueryProject(query, env.Projection)
		} else {
			matches = s.store.Query(query)
		}
		out := make([]string, len(matches))
		for i, ad := range matches {
			out[i] = protocol.EncodeAd(ad)
		}
		return &protocol.Envelope{Type: protocol.TypeQueryReply, Ads: out}
	case protocol.TypeLease:
		if env.Holder == "" {
			return protocol.Errorf("lease request requires a holder")
		}
		lease, granted, err := s.store.AcquireLease(env.Holder, env.Lifetime)
		if err != nil {
			return protocol.Errorf("lease: %v", err)
		}
		// Seq piggybacks the store's pool-change counter so an
		// event-driven negotiator learns "did anything change" from the
		// lease heartbeat it must send anyway.
		return &protocol.Envelope{
			Type: protocol.TypeLeaseReply, Accepted: granted,
			Holder: lease.Holder, Epoch: lease.Epoch, Deadline: lease.Deadline,
			Seq: s.store.Version(),
		}
	default:
		return protocol.Errorf("collector does not handle %s", env.Type)
	}
}

// lintAd runs the static analyzer over a freshly advertised ad and
// feeds the verdicts into the validation counters, with a per-code
// breakdown (collector_lint_cad201_total and friends). The pass is
// gated on instrumentation — an uninstrumented collector skips the
// analysis cost entirely — and findings never reject an
// advertisement: the collector stays forgiving about ad contents, it
// just keeps score.
func (s *Server) lintAd(ad *classad.Ad) {
	s.mu.Lock()
	reg := s.lintReg
	s.mu.Unlock()
	if reg == nil {
		return
	}
	for _, d := range analysis.AnalyzeAd(ad, nil) {
		if d.Severity >= analysis.Error {
			s.mLintErrs.Inc()
		} else {
			s.mLintWarns.Inc()
		}
		reg.Counter("collector_lint_" + strings.ToLower(d.Code) + "_total").Inc()
		if name, ok := ad.Eval(classad.AttrName).StringVal(); ok {
			s.log("collector: lint %s: %s", name, d)
		} else {
			s.log("collector: lint: %s", d)
		}
	}
	s.lintBilateral(reg, ad)
}

// bilateralSample caps how many stored counterpart ads one incoming
// advertisement is checked against, bounding the per-ADVERTISE cost in
// a large pool to a constant.
const bilateralSample = 64

// lintBilateral runs the cross-ad analyzer between a freshly
// advertised ad and a sample of its stored counterparts (ads of a
// different Type), keeping score:
//
//	collector_lint_bilateral_checked_total    pairs analyzed
//	collector_lint_bilateral_conflicts_total  pairs proven unmatchable
//	collector_lint_bilateral_dead_total       ads no sampled counterpart can match
//
// A climbing conflicts/checked ratio means the pool is filling with
// ads that can never pair — the SAMGrid failure mode — and the dead
// counter names how many arrivals are provably wasted. Like the
// single-ad lint, this never rejects an advertisement.
func (s *Server) lintBilateral(reg *obs.Registry, ad *classad.Ad) {
	counterparts, dead := 0, 0
	for _, stored := range s.store.Query(classad.NewAd()) {
		if counterparts >= bilateralSample {
			break
		}
		if !analysis.IsCounterpart(ad, stored) {
			continue
		}
		counterparts++
		reg.Counter("collector_lint_bilateral_checked_total").Inc()
		if analysis.AnalyzeMatch(ad, stored, nil).NeverMatch {
			reg.Counter("collector_lint_bilateral_conflicts_total").Inc()
			dead++
		}
	}
	if counterparts > 0 && dead == counterparts {
		reg.Counter("collector_lint_bilateral_dead_total").Inc()
		if name, ok := ad.Eval(classad.AttrName).StringVal(); ok {
			s.log("collector: lint %s: no sampled counterpart (%d checked) can ever match this ad", name, counterparts)
		} else {
			s.log("collector: lint: no sampled counterpart (%d checked) can ever match this ad", counterparts)
		}
	}
}

// Client is a thin dialer for talking to a collector server; tools and
// agents share it. Round-trips are bounded (connect timeout plus
// per-envelope deadlines) and retried with capped exponential backoff:
// every advertising-protocol message is idempotent — re-ADVERTISing
// refreshes, re-INVALIDATing is a no-op, re-QUERYing re-reads — so a
// retry against a restarted collector is always safe (the paper's
// weak-consistency design, §4.3).
type Client struct {
	Addr string
	// Dialer supplies timeouts; nil selects netx.DefaultDialer.
	Dialer *netx.Dialer
	// Retry is the backoff policy for transport failures; the zero
	// value selects the netx defaults. Application-level ERROR
	// replies are never retried.
	Retry netx.RetryPolicy
}

// roundTrip sends one envelope and reads one reply on a fresh
// connection, retrying transport failures.
func (c *Client) roundTrip(env *protocol.Envelope) (*protocol.Envelope, error) {
	d := c.Dialer
	if d == nil {
		d = netx.DefaultDialer
	}
	var reply *protocol.Envelope
	err := netx.Retry(context.Background(), c.Retry, func() error {
		conn, err := d.Dial(c.Addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		if err := protocol.Write(conn, env); err != nil {
			return err
		}
		rep, err := protocol.Read(bufio.NewReader(conn))
		if err != nil {
			return err
		}
		reply = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reply, nil
}

// Advertise sends an ad with the given lifetime (0 for the default).
func (c *Client) Advertise(ad *classad.Ad, lifetime int64) error {
	reply, err := c.roundTrip(&protocol.Envelope{
		Type: protocol.TypeAdvertise, Ad: protocol.EncodeAd(ad), Lifetime: lifetime,
	})
	if err != nil {
		return err
	}
	return ackOrError(reply)
}

// Invalidate withdraws the ad stored under name.
func (c *Client) Invalidate(name string) error {
	reply, err := c.roundTrip(&protocol.Envelope{Type: protocol.TypeInvalidate, Name: name})
	if err != nil {
		return err
	}
	return ackOrError(reply)
}

// Query poses a one-way query and returns the matching ads.
func (c *Client) Query(query *classad.Ad) ([]*classad.Ad, error) {
	return c.QueryProject(query, nil)
}

// QueryProject is Query restricted to the named attributes (Name is
// always included).
func (c *Client) QueryProject(query *classad.Ad, attrs []string) ([]*classad.Ad, error) {
	reply, err := c.roundTrip(&protocol.Envelope{
		Type: protocol.TypeQuery, Ad: protocol.EncodeAd(query), Projection: attrs,
	})
	if err != nil {
		return nil, err
	}
	if reply.Type == protocol.TypeError {
		return nil, errors.New(reply.Reason)
	}
	if reply.Type != protocol.TypeQueryReply {
		return nil, errors.New("collector: unexpected reply " + string(reply.Type))
	}
	out := make([]*classad.Ad, 0, len(reply.Ads))
	for _, s := range reply.Ads {
		ad, err := protocol.DecodeAd(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ad)
	}
	return out, nil
}

// AcquireLease requests (or renews) the negotiator leadership lease
// for holder, for ttl seconds (0 for the collector's default). The
// returned state describes the lease after the request: the holder's
// own grant, or the incumbent it lost to (granted false). Safe to
// retry: re-requesting a held lease renews it.
func (c *Client) AcquireLease(holder string, ttl int64) (Lease, bool, error) {
	lease, granted, _, err := c.AcquireLeaseSeq(holder, ttl)
	return lease, granted, err
}

// AcquireLeaseSeq is AcquireLease additionally returning the
// collector's pool-change counter (Store.Version) from the reply — the
// signal an event-driven negotiator compares across heartbeats to
// decide whether a negotiation cycle has any work. A collector
// predating the counter reports 0, which compares as "changed" against
// any cached value's successor and so degrades to timer-mode behavior.
func (c *Client) AcquireLeaseSeq(holder string, ttl int64) (Lease, bool, uint64, error) {
	reply, err := c.roundTrip(&protocol.Envelope{
		Type: protocol.TypeLease, Holder: holder, Lifetime: ttl,
	})
	if err != nil {
		return Lease{}, false, 0, err
	}
	if reply.Type == protocol.TypeError {
		return Lease{}, false, 0, errors.New(reply.Reason)
	}
	if reply.Type != protocol.TypeLeaseReply {
		return Lease{}, false, 0, errors.New("collector: unexpected reply " + string(reply.Type))
	}
	return Lease{Holder: reply.Holder, Epoch: reply.Epoch, Deadline: reply.Deadline}, reply.Accepted, reply.Seq, nil
}

func ackOrError(reply *protocol.Envelope) error {
	switch reply.Type {
	case protocol.TypeAck:
		return nil
	case protocol.TypeError:
		return errors.New(reply.Reason)
	default:
		return errors.New("collector: unexpected reply " + string(reply.Type))
	}
}
