// Package collector implements the pool manager's advertisement store
// (paper §4): RAs and CAs "periodically send classads to a Condor pool
// manager, describing the resources and job queues respectively". The
// store keys ads by their Name attribute, expires ads that are not
// refreshed within their advertised lifetime, and answers the one-way
// queries that status and browse tools pose ("One-way matching
// protocols are used to find all objects matching a given pattern").
package collector

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/classad"
	"repro/internal/obs"
	"repro/internal/store"
)

// DefaultLifetime is how long an advertisement stays valid when the
// advertiser does not say: three negotiation cycles of the deployed
// system's five-minute period.
const DefaultLifetime int64 = 900

// entry is one stored advertisement.
type entry struct {
	ad      *classad.Ad
	expires int64 // absolute seconds; 0 means never
	// seq is the advertiser-assigned sequence number of this ad state;
	// an UPDATE_DELTA applies only against a matching seq (delta.go).
	seq uint64
	// src caches ad.String() so a refresh can cheaply detect that the
	// content did not change — the steady-state heartbeat — and skip
	// publishing a delta to the change feed.
	src string
}

// Store is a thread-safe advertisement store. The zero value is not
// usable; construct with New.
type Store struct {
	mu  sync.RWMutex
	ads map[string]entry // folded Name -> entry
	env *classad.Env

	// Durability (persist.go); nil for a plain in-memory store.
	log        *store.Log
	persistErr error
	// Negotiator leadership lease (lease.go).
	lease Lease

	// Change-feed subscribers (delta.go).
	subs []*Subscription
	// version counts published deltas — a cheap monotonic "did the
	// pool change" signal remote negotiators poll (not persisted: a
	// restart resets it, which reads as a change, which is correct).
	version uint64
	// Hooks are the seeded fault-injection points (delta.go); zero in
	// production.
	Hooks Hooks

	// Observability hooks; nil (no-op) until Instrument is called.
	mStored, mExpired, mInvalidated *obs.Counter
	mLeaseGrants, mLeaseTakeovers   *obs.Counter
	mDeltaApplied, mDeltaMismatch   *obs.Counter
	mDeltaBytesSaved                *obs.Counter

	// daemons tracks self-advertising daemons (Type == "Daemon") past
	// their ads' expiry: unlike ordinary ads, a daemon that stops
	// advertising should be surfaced as missing, not silently dropped.
	daemons map[string]daemonEntry
}

// daemonEntry remembers one daemon's latest self-advertisement.
type daemonEntry struct {
	kind     string
	lastSeen int64
	expires  int64
}

// DaemonStatus is one daemon's health derived from its self-ads:
// "ok" while its latest ad is within lifetime, "missing" once the ad
// has expired without a refresh (the daemon died or is partitioned).
// Cleanly shut-down daemons INVALIDATE their ad and drop off the list
// entirely.
type DaemonStatus struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Status   string `json:"status"`
	LastSeen int64  `json:"last_seen"`
	// OverdueSeconds is how long past expiry the daemon has been
	// silent (0 while ok).
	OverdueSeconds int64 `json:"overdue_seconds,omitempty"`
}

// New returns an empty store reading time from env (nil for the
// process default).
func New(env *classad.Env) *Store {
	if env == nil {
		env = classad.DefaultEnv()
	}
	return &Store{ads: make(map[string]entry), env: env}
}

// Instrument routes store activity into reg's counters:
// collector_ads_stored_total (Update calls, i.e. new ads plus
// refreshes), collector_ads_expired_total (lifetime expiries),
// collector_ads_invalidated_total (explicit withdrawals),
// collector_lease_grants_total (leadership grants and renewals) and
// collector_lease_takeovers_total (epoch bumps: the lease changing
// hands). It also publishes the live ad count as the gauge
// collector_ads.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	s.mStored = reg.Counter("collector_ads_stored_total")
	s.mExpired = reg.Counter("collector_ads_expired_total")
	s.mInvalidated = reg.Counter("collector_ads_invalidated_total")
	s.mLeaseGrants = reg.Counter("collector_lease_grants_total")
	s.mLeaseTakeovers = reg.Counter("collector_lease_takeovers_total")
	s.mDeltaApplied = reg.Counter("collector_delta_applied_total")
	s.mDeltaMismatch = reg.Counter("collector_delta_mismatch_total")
	s.mDeltaBytesSaved = reg.Counter("collector_delta_bytes_saved_total")
	log := s.log
	s.mu.Unlock()
	reg.GaugeFunc("collector_ads", func() float64 { return float64(s.Len()) })
	if log != nil {
		log.Instrument(reg)
	}
}

// NameOf extracts the identity an ad is stored under.
func NameOf(ad *classad.Ad) (string, error) {
	v := ad.Eval(classad.AttrName)
	s, ok := v.StringVal()
	if !ok || s == "" {
		return "", fmt.Errorf("collector: advertisement has no usable Name attribute (got %s)", v.Type())
	}
	return s, nil
}

// Update stores or refreshes an advertisement. lifetime <= 0 selects
// DefaultLifetime. Re-advertising under the same Name replaces the
// previous ad, which is how agents publish state changes.
func (s *Store) Update(ad *classad.Ad, lifetime int64) error {
	return s.UpdateSeq(ad, lifetime, 0)
}

// UpdateSeq is Update with an explicit advertiser-assigned sequence
// number (the wire ADVERTISE's Seq field); seq 0 means the advertiser
// is not sequence-aware and the store assigns the successor of the
// stored sequence, so mixed full/delta refresh paths stay coherent.
func (s *Store) UpdateSeq(ad *classad.Ad, lifetime int64, seq uint64) error {
	name, err := NameOf(ad)
	if err != nil {
		return err
	}
	if lifetime <= 0 {
		lifetime = DefaultLifetime
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	key := classad.Fold(name)
	prev, existed := s.ads[key]
	if seq == 0 {
		seq = prev.seq + 1
	}
	src := ad.String()
	expires := s.env.Now() + lifetime
	s.ads[key] = entry{ad: ad, expires: expires, seq: seq, src: src}
	s.mStored.Inc()
	s.trackDaemonLocked(ad, key, expires)
	switch {
	case !existed:
		s.publishLocked(Delta{Kind: DeltaAdded, Name: key, Ad: ad})
	case prev.src != src:
		s.publishLocked(Delta{Kind: DeltaChanged, Name: key, Ad: ad})
		// Content-identical refresh: a pure heartbeat publishes nothing.
	}
	// Journal after applying: a failure leaves the ad live in memory
	// (harmless — it would simply be lost with the process) but
	// unacknowledged, so the advertiser retries (persist.go).
	return s.journalLocked(persistRecord{Op: opUpdate, Ad: src, Expires: expires, Seq: seq})
}

// trackDaemonLocked maintains the daemon-health map for ads of
// Type == "Daemon". The caller holds s.mu.
func (s *Store) trackDaemonLocked(ad *classad.Ad, key string, expires int64) {
	if typ, ok := ad.Eval(classad.AttrType).StringVal(); ok && classad.Fold(typ) == "daemon" {
		kind, _ := ad.Eval("Daemon").StringVal()
		if s.daemons == nil {
			s.daemons = make(map[string]daemonEntry)
		}
		s.daemons[key] = daemonEntry{kind: kind, lastSeen: s.env.Now(), expires: expires}
	}
}

// Invalidate removes the ad stored under name, reporting whether one
// was present. Agents send this on clean shutdown.
func (s *Store) Invalidate(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := classad.Fold(name)
	e, ok := s.ads[key]
	delete(s.ads, key)
	// A daemon invalidating its self-ad is announcing a clean
	// shutdown: stop tracking it rather than reporting it missing.
	delete(s.daemons, key)
	if ok {
		s.mInvalidated.Inc()
		s.publishLocked(Delta{Kind: DeltaInvalidated, Name: key, Ad: e.ad})
		// A journal failure here is tolerable in a way an Update failure
		// is not: a resurrected ad still carries its original absolute
		// expiry, so the worst case is the paper's ordinary weak
		// consistency — the ad lingers until its lifetime runs out. The
		// error is retained for PersistErr.
		s.journalLocked(persistRecord{Op: opInvalidate, Name: name})
	}
	return ok
}

// prune drops expired entries; the caller holds the write lock.
func (s *Store) pruneLocked() {
	now := s.env.Now()
	for k, e := range s.ads {
		if e.expires != 0 && e.expires <= now {
			delete(s.ads, k)
			s.mExpired.Inc()
			s.publishLocked(Delta{Kind: DeltaExpired, Name: k, Ad: e.ad})
		}
	}
}

// Prune removes expired advertisements immediately.
func (s *Store) Prune() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
}

// Len reports the number of live advertisements.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	return len(s.ads)
}

// All returns the live advertisements, sorted by folded name for
// deterministic negotiation cycles.
func (s *Store) All() []*classad.Ad {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	keys := make([]string, 0, len(s.ads))
	for k := range s.ads {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*classad.Ad, len(keys))
	for i, k := range keys {
		out[i] = s.ads[k].ad
	}
	return out
}

// Query returns the live ads matching a one-way query: only the
// query's constraint is evaluated, with the stored ad as the
// candidate.
func (s *Store) Query(query *classad.Ad) []*classad.Ad {
	var out []*classad.Ad
	for _, ad := range s.All() {
		if classad.MatchesQuery(query, ad, s.env) {
			out = append(out, ad)
		}
	}
	return out
}

// QueryProject is Query with a projection: each returned ad carries
// only the requested attributes (plus Name, always, so results stay
// identifiable). Projected attributes are evaluated to literals, so
// the caller sees values even when the stored attribute was an
// expression over other attributes of the ad. Tools browsing large
// pools use this to avoid shipping whole ads.
func (s *Store) QueryProject(query *classad.Ad, attrs []string) []*classad.Ad {
	full := s.Query(query)
	out := make([]*classad.Ad, 0, len(full))
	for _, ad := range full {
		p := classad.NewAd()
		if name, ok := ad.Eval(classad.AttrName).StringVal(); ok {
			p.SetString(classad.AttrName, name)
		}
		for _, a := range attrs {
			if classad.Fold(a) == classad.Fold(classad.AttrName) {
				continue
			}
			if _, ok := ad.Lookup(a); !ok {
				continue
			}
			p.Set(a, classad.Lit(ad.EvalEnv(a, s.env)))
		}
		out = append(out, p)
	}
	return out
}

// Lookup fetches the live ad stored under name.
func (s *Store) Lookup(name string) (*classad.Ad, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	e, ok := s.ads[classad.Fold(name)]
	if !ok {
		return nil, false
	}
	return e.ad, true
}

// DaemonHealth reports every self-advertising daemon the store has
// seen, sorted by name: "ok" while the latest self-ad is live,
// "missing" once it expired without a refresh or withdrawal — the
// absent-ad detection behind `cstatus -ha` and /daemons. The pool
// monitors itself through its own matchmaking substrate: daemons are
// just ads, and health is just expiry.
func (s *Store) DaemonHealth() []DaemonStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.env.Now()
	out := make([]DaemonStatus, 0, len(s.daemons))
	for name, d := range s.daemons {
		st := DaemonStatus{Name: name, Kind: d.kind, Status: "ok", LastSeen: d.lastSeen}
		if d.expires != 0 && d.expires <= now {
			st.Status = "missing"
			st.OverdueSeconds = now - d.expires
		}
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// SelectType returns live ads whose Type attribute equals t — the
// convenience the negotiator uses to split machines from jobs.
func (s *Store) SelectType(t string) []*classad.Ad {
	var out []*classad.Ad
	for _, ad := range s.All() {
		if typ, ok := ad.Eval(classad.AttrType).StringVal(); ok && classad.Fold(typ) == classad.Fold(t) {
			out = append(out, ad)
		}
	}
	return out
}
