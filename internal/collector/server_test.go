package collector

import (
	"bufio"
	"net"
	"testing"

	"repro/internal/classad"
	"repro/internal/protocol"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(New(nil), t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, &Client{Addr: addr}
}

func TestServerAdvertiseQueryInvalidate(t *testing.T) {
	srv, client := startServer(t)
	if err := client.Advertise(classad.Figure1(), 0); err != nil {
		t.Fatal(err)
	}
	if srv.Store().Len() != 1 {
		t.Fatalf("store len = %d", srv.Store().Len())
	}
	got, err := client.Query(classad.MustParse(`[Constraint = other.Arch == "INTEL"]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("query returned %d ads", len(got))
	}
	if name, _ := got[0].Eval("Name").StringVal(); name != "leonardo.cs.wisc.edu" {
		t.Errorf("queried ad name = %q", name)
	}
	if err := client.Invalidate("leonardo.cs.wisc.edu"); err != nil {
		t.Fatal(err)
	}
	if srv.Store().Len() != 0 {
		t.Errorf("store len after invalidate = %d", srv.Store().Len())
	}
}

func TestServerRejectsBadMessages(t *testing.T) {
	_, client := startServer(t)
	// Bad ad.
	reply, err := client.roundTrip(&protocol.Envelope{Type: protocol.TypeAdvertise, Ad: "[broken"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != protocol.TypeError {
		t.Errorf("bad ad reply = %s, want ERROR", reply.Type)
	}
	// Nameless ad.
	reply, _ = client.roundTrip(&protocol.Envelope{Type: protocol.TypeAdvertise, Ad: "[x = 1]"})
	if reply.Type != protocol.TypeError {
		t.Errorf("nameless ad reply = %s, want ERROR", reply.Type)
	}
	// Invalidate without a name.
	reply, _ = client.roundTrip(&protocol.Envelope{Type: protocol.TypeInvalidate})
	if reply.Type != protocol.TypeError {
		t.Errorf("nameless invalidate reply = %s, want ERROR", reply.Type)
	}
	// Unknown message type.
	reply, _ = client.roundTrip(&protocol.Envelope{Type: protocol.TypeClaim})
	if reply.Type != protocol.TypeError {
		t.Errorf("claim to collector reply = %s, want ERROR", reply.Type)
	}
	// Invalidating a missing ad is still acknowledged (idempotent).
	reply, _ = client.roundTrip(&protocol.Envelope{Type: protocol.TypeInvalidate, Name: "ghost"})
	if reply.Type != protocol.TypeAck {
		t.Errorf("idempotent invalidate reply = %s, want ACK", reply.Type)
	}
}

func TestServerPipelinedRequests(t *testing.T) {
	srv, client := startServer(t)
	conn, err := net.Dial("tcp", client.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Several requests on one connection.
	for i := 0; i < 3; i++ {
		ad := classad.NewAd()
		ad.SetString("Name", string(rune('a'+i)))
		ad.SetString("Type", "Machine")
		if err := protocol.Write(conn, &protocol.Envelope{
			Type: protocol.TypeAdvertise, Ad: protocol.EncodeAd(ad),
		}); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(conn)
	for i := 0; i < 3; i++ {
		reply, err := protocol.Read(r)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Type != protocol.TypeAck {
			t.Fatalf("reply %d = %s", i, reply.Type)
		}
	}
	if srv.Store().Len() != 3 {
		t.Errorf("store len = %d, want 3", srv.Store().Len())
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	srv.Close()
	srv.Close() // second close must not panic or hang
}
