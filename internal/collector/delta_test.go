package collector

// Delta-wire tests: the merge(base, delta) == full property, the
// sequence-gap -> full-re-advertise fallback, the empty-delta
// heartbeat, the pool-change counter, and mechanical rediscovery of
// the StaleDeltaApply mutant.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/classad"
	"repro/internal/obs"
)

// randAd builds an ad named name with a random subset of a fixed
// attribute pool, each holding a random literal or expression.
func randAd(rng *rand.Rand, name string) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Name", name)
	ad.SetString("Type", "Machine")
	attrs := []string{"Arch", "Memory", "Mips", "State", "LoadAvg", "Pool", "Disk"}
	for _, attr := range attrs {
		switch rng.Intn(4) {
		case 0: // absent
		case 1:
			ad.SetInt(attr, int64(rng.Intn(512)))
		case 2:
			ad.SetString(attr, fmt.Sprintf("v%d", rng.Intn(8)))
		case 3:
			if err := ad.SetExprString(attr, fmt.Sprintf("other.Prio >= %d", rng.Intn(8))); err != nil {
				panic(err)
			}
		}
	}
	return ad
}

// adsEquivalent compares two ads attribute by attribute on unparsed
// expression text — the same canonical form DiffAds diffs on — so the
// comparison is order-insensitive.
func adsEquivalent(a, b *classad.Ad) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, name := range a.Names() {
		ae, _ := a.Lookup(name)
		be, ok := b.Lookup(name)
		if !ok || ae.String() != be.String() {
			return false
		}
	}
	return true
}

// TestMergeDeltaEquivalentToFull is the in-memory half of the delta
// property: for any two ads, applying DiffAds' output to the base
// reproduces the target exactly.
func TestMergeDeltaEquivalentToFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		prev := randAd(rng, "m1")
		next := randAd(rng, "m1")
		changes, removed := DiffAds(prev, next)
		merged := MergeAd(prev, changes, removed)
		if !adsEquivalent(merged, next) {
			t.Fatalf("iteration %d: merge(base, diff) != full\nbase   %s\ntarget %s\nmerged %s",
				i, prev, next, merged)
		}
		// An unchanged ad must diff to the empty delta — the unchanged
		// heartbeat costs zero attributes on the wire.
		changes, removed = DiffAds(next, next)
		if changes.Len() != 0 || len(removed) != 0 {
			t.Fatalf("iteration %d: identical ads produced a non-empty delta: %s / %v", i, changes, removed)
		}
	}
}

// TestApplyDeltaMatchesDirectStore runs the same property through the
// store: patching a stored base with a wire delta leaves exactly the
// ad a full re-advertise would have stored, at the new sequence.
func TestApplyDeltaMatchesDirectStore(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		base := randAd(rng, "m1")
		next := randAd(rng, "m1")

		patched := New(nil)
		if err := patched.UpdateSeq(base, 60, 1); err != nil {
			t.Fatal(err)
		}
		changes, removed := DiffAds(base, next)
		if err := patched.ApplyDelta("m1", 1, 2, changes, removed, 60); err != nil {
			t.Fatalf("iteration %d: ApplyDelta: %v", i, err)
		}

		direct := New(nil)
		if err := direct.UpdateSeq(next, 60, 2); err != nil {
			t.Fatal(err)
		}

		got, _ := patched.Lookup("m1")
		want, _ := direct.Lookup("m1")
		if !adsEquivalent(got, want) {
			t.Fatalf("iteration %d: patched store diverged from direct store\ngot  %s\nwant %s", i, got, want)
		}
		if patched.Seq("m1") != 2 {
			t.Fatalf("iteration %d: patched seq = %d, want 2", i, patched.Seq("m1"))
		}
	}
}

// TestApplyDeltaHeartbeat pins the steady-state refresh: an empty
// delta renews the lifetime, advances the sequence, and publishes
// nothing to the change feed.
func TestApplyDeltaHeartbeat(t *testing.T) {
	clock := int64(1000)
	env := &classad.Env{Now: func() int64 { return clock }}
	s := New(env)
	sub := s.Subscribe()
	ad := classad.MustParse(`[Name = "m1"; Type = "Machine"; Memory = 64]`)
	if err := s.UpdateSeq(ad, 60, 1); err != nil {
		t.Fatal(err)
	}
	sub.Drain() // the add itself

	clock += 50
	if err := s.ApplyDelta("m1", 1, 2, nil, nil, 60); err != nil {
		t.Fatal(err)
	}
	if ds := sub.Drain(); len(ds) != 0 {
		t.Fatalf("empty delta published %d change(s): %v", len(ds), ds)
	}
	clock += 50 // past the original expiry, inside the renewed one
	if _, ok := s.Lookup("m1"); !ok {
		t.Fatalf("heartbeat did not renew the lifetime")
	}
	if got := s.Seq("m1"); got != 2 {
		t.Fatalf("seq after heartbeat = %d, want 2", got)
	}
}

// TestDeltaSequenceGapFallsBackToFull wires a DeltaAdvertiser to a
// real server, yanks its base out from under it with an out-of-band
// full advertise, and checks the next refresh recovers with a full
// ADVERTISE (counted as a fallback) that re-establishes the ad.
func TestDeltaSequenceGapFallsBackToFull(t *testing.T) {
	srv, client := startServer(t)
	o := obs.New()
	srv.Store().Instrument(o.Registry())

	da := NewDeltaAdvertiser(client)
	v1 := classad.MustParse(`[Name = "m1"; Type = "Machine"; Memory = 64]`)
	if err := da.Advertise(v1, 60); err != nil {
		t.Fatal(err)
	}

	// Out-of-band: a plain Advertise (sequence-unaware) resets the
	// stored sequence, exactly what a racing advertiser or collector
	// restart looks like from this advertiser's side.
	if err := client.Advertise(classad.MustParse(`[Name = "m1"; Type = "Machine"; Memory = 32]`), 60); err != nil {
		t.Fatal(err)
	}

	v2 := classad.MustParse(`[Name = "m1"; Type = "Machine"; Memory = 128]`)
	if err := da.Advertise(v2, 60); err != nil {
		t.Fatalf("advertise after sequence gap: %v", err)
	}
	fulls, deltas, fallbacks := da.Stats()
	if fallbacks != 1 || fulls != 2 {
		t.Fatalf("stats after gap: fulls=%d deltas=%d fallbacks=%d, want fulls=2 fallbacks=1", fulls, deltas, fallbacks)
	}
	stored, ok := srv.Store().Lookup("m1")
	if !ok || !adsEquivalent(stored, v2) {
		t.Fatalf("stored ad after fallback = %v, want %s", stored, v2)
	}
	if got := o.Registry().Snapshot().Counters["collector_delta_mismatch_total"]; got != 1 {
		t.Fatalf("collector_delta_mismatch_total = %d, want 1", got)
	}

	// Once re-based, the next unchanged refresh is a delta again.
	if err := da.Advertise(v2, 60); err != nil {
		t.Fatal(err)
	}
	if _, deltas, _ := da.Stats(); deltas != 1 {
		t.Fatalf("deltas after re-base = %d, want 1", deltas)
	}
}

// TestStaleDeltaApplyMutantRediscovered replays the lost-update
// scenario the sequence check exists for. Healthy store: the stale
// delta is rejected, the stored ad stays what the last full advertise
// established, and the advertiser's fallback re-converges it. Mutant
// store: the stale delta is merged and the stored ad diverges from
// every state any advertiser ever intended.
func TestStaleDeltaApplyMutantRediscovered(t *testing.T) {
	v1 := classad.MustParse(`[Name = "m1"; Type = "Machine"; Memory = 64; Arch = "INTEL"]`)
	v2 := classad.MustParse(`[Name = "m1"; Type = "Machine"; Memory = 32; Arch = "SPARC"; Disk = 100]`)
	v3 := classad.MustParse(`[Name = "m1"; Type = "Machine"; Memory = 128; Arch = "INTEL"]`)

	scenario := func(s *Store) error {
		if err := s.UpdateSeq(v1, 60, 1); err != nil {
			t.Fatal(err)
		}
		// Lost update: another writer re-establishes the ad at seq 5.
		if err := s.UpdateSeq(v2, 60, 5); err != nil {
			t.Fatal(err)
		}
		// A delta computed against the long-gone v1 base.
		changes, removed := DiffAds(v1, v3)
		return s.ApplyDelta("m1", 1, 6, changes, removed, 60)
	}

	healthy := New(nil)
	o := obs.New()
	healthy.Instrument(o.Registry())
	err := scenario(healthy)
	if err == nil || !IsSeqMismatch(err) {
		t.Fatalf("healthy store accepted a stale delta (err = %v)", err)
	}
	if got, _ := healthy.Lookup("m1"); !adsEquivalent(got, v2) {
		t.Fatalf("healthy store mutated the ad on a rejected delta: %s", got)
	}
	if got := o.Registry().Snapshot().Counters["collector_delta_mismatch_total"]; got != 1 {
		t.Fatalf("collector_delta_mismatch_total = %d, want 1", got)
	}

	mutant := New(nil)
	mutant.Hooks.StaleDeltaApply = true
	if err := scenario(mutant); err != nil {
		t.Fatalf("mutant unexpectedly rejected the stale delta: %v", err)
	}
	got, _ := mutant.Lookup("m1")
	for _, intended := range []*classad.Ad{v1, v2, v3} {
		if adsEquivalent(got, intended) {
			t.Fatalf("mutant store landed on an intended state %s; the corruption went undetected", intended)
		}
	}
	t.Logf("mutant corrupted the stored ad to %s (never advertised by anyone)", got)
}

// TestStoreVersionAdvancesOncePerDelta pins the pool-change counter
// remote negotiators poll through the lease heartbeat: it moves once
// per published delta and holds still across content-identical
// refreshes.
func TestStoreVersionAdvancesOncePerDelta(t *testing.T) {
	clock := int64(1000)
	env := &classad.Env{Now: func() int64 { return clock }}
	s := New(env)
	if got := s.Version(); got != 0 {
		t.Fatalf("fresh store version = %d", got)
	}
	ad := classad.MustParse(`[Name = "m1"; Type = "Machine"; Memory = 64]`)
	if err := s.Update(ad, 60); err != nil {
		t.Fatal(err)
	}
	if got := s.Version(); got != 1 {
		t.Fatalf("version after add = %d, want 1", got)
	}
	// Content-identical heartbeat: no delta, no version movement.
	if err := s.Update(ad, 60); err != nil {
		t.Fatal(err)
	}
	if got := s.Version(); got != 1 {
		t.Fatalf("version after identical refresh = %d, want 1", got)
	}
	if err := s.Update(classad.MustParse(`[Name = "m1"; Type = "Machine"; Memory = 128]`), 60); err != nil {
		t.Fatal(err)
	}
	if got := s.Version(); got != 2 {
		t.Fatalf("version after change = %d, want 2", got)
	}
	if err := s.Update(classad.MustParse(`[Name = "m2"; Type = "Machine"]`), 60); err != nil {
		t.Fatal(err)
	}
	s.Invalidate("m2")
	if got := s.Version(); got != 4 {
		t.Fatalf("version after add+invalidate = %d, want 4", got)
	}
	clock += 120 // m1 expires
	if got := s.Version(); got != 5 {
		t.Fatalf("version after expiry = %d, want 5", got)
	}
}
