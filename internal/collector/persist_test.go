package collector

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/classad"
	"repro/internal/store"
)

// testClock builds a classad.Env over a settable clock.
func testClock(start int64) (*classad.Env, *atomic.Int64) {
	var now atomic.Int64
	now.Store(start)
	env := &classad.Env{
		Now:  now.Load,
		Rand: func() float64 { return 0.5 },
	}
	return env, &now
}

func mkAd(t *testing.T, name, typ string, extra string) *classad.Ad {
	t.Helper()
	src := fmt.Sprintf("[ Name = %q; Type = %q; %s ]", name, typ, extra)
	ad, err := classad.Parse(src)
	if err != nil {
		t.Fatalf("parse %s: %v", src, err)
	}
	return ad
}

func TestDurableStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	env, now := testClock(1000)

	s, err := OpenDurable(dir, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(mkAd(t, "m1", "Machine", "Memory = 64"), 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(mkAd(t, "m2", "Machine", "Memory = 32"), 30); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(mkAd(t, "j1", "Job", "Owner = \"raman\""), 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(mkAd(t, "m1", "Machine", "Memory = 128"), 100); err != nil {
		t.Fatal(err) // refresh replaces
	}
	if !s.Invalidate("j1") {
		t.Fatal("invalidate found nothing")
	}
	s.Close()

	// Restart: m1 (refreshed) and m2 must be back, j1 gone.
	s2, err := OpenDurable(dir, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Len(); n != 2 {
		t.Fatalf("recovered %d ads, want 2", n)
	}
	ad, ok := s2.Lookup("m1")
	if !ok {
		t.Fatal("m1 lost across restart")
	}
	if mem, _ := ad.Eval("Memory").IntVal(); mem != 128 {
		t.Fatalf("m1 Memory = %d, want the refreshed 128", mem)
	}
	if _, ok := s2.Lookup("j1"); ok {
		t.Fatal("invalidated ad resurrected")
	}

	// Stale ads re-expire on replay: advance past m2's deadline
	// (1000+30) but not m1's (1000+100).
	now.Store(1050)
	if _, ok := s2.Lookup("m2"); ok {
		t.Fatal("m2 should have re-expired from its original deadline")
	}
	if _, ok := s2.Lookup("m1"); !ok {
		t.Fatal("m1 expired early")
	}
}

func TestDurableStoreSnapshotPolicy(t *testing.T) {
	dir := t.TempDir()
	env, _ := testClock(1000)
	s, err := OpenDurable(dir, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < persistSnapshotEvery+10; i++ {
		name := fmt.Sprintf("m%03d", i%20) // 20 live names, many refreshes
		if err := s.Update(mkAd(t, name, "Machine", "Memory = 1"), 0); err != nil {
			t.Fatal(err)
		}
	}
	stats, ok := s.LogStats()
	if !ok {
		t.Fatal("durable store reports no log stats")
	}
	if stats.Gen == 0 {
		t.Fatalf("no snapshot after %d updates (policy %d)", persistSnapshotEvery+10, persistSnapshotEvery)
	}
	if stats.SinceSnapshot >= persistSnapshotEvery {
		t.Fatalf("WAL still holds %d records after snapshot", stats.SinceSnapshot)
	}
	s.Close()

	s2, err := OpenDurable(dir, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Len(); n != 20 {
		t.Fatalf("recovered %d ads, want 20", n)
	}
}

func TestDurableStoreCrashPoints(t *testing.T) {
	// Sweep every mutating filesystem op of a fixed workload; after
	// each crash a clean reopen must hold exactly the acknowledged
	// updates (invalidations are weakly consistent; this workload has
	// none).
	workload := func(s *Store) (acked []string) {
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("m%d", i)
			if err := s.Update(mkAd(t, name, "Machine", "Memory = 1"), 0); err != nil {
				return acked
			}
			acked = append(acked, name)
		}
		return acked
	}
	env, _ := testClock(1000)

	// Count ops fault-free.
	ffs := store.NewFaultFS(nil, store.FaultPlan{})
	s, err := OpenDurable(t.TempDir(), env, ffs)
	if err != nil {
		t.Fatal(err)
	}
	workload(s)
	s.Close()
	total := ffs.Stats().Ops

	for k := 1; k <= total; k++ {
		dir := t.TempDir()
		ffs := store.NewFaultFS(nil, store.FaultPlan{Seed: int64(k), CrashAtOp: k})
		s, err := OpenDurable(dir, env, ffs)
		if err != nil {
			continue // crashed inside Open; nothing acknowledged
		}
		acked := workload(s)
		s.Close()
		s2, err := OpenDurable(dir, env, nil)
		if err != nil {
			t.Fatalf("crash@%d: recovery failed: %v", k, err)
		}
		for _, name := range acked {
			if _, ok := s2.Lookup(name); !ok {
				t.Errorf("crash@%d: acknowledged ad %s lost", k, name)
			}
		}
		s2.Close()
	}
}

func TestAcquireLease(t *testing.T) {
	env, now := testClock(1000)
	s := New(env) // leases work on in-memory stores too

	// First acquisition bumps the epoch from 0.
	l, ok, err := s.AcquireLease("neg-a", 15)
	if err != nil || !ok {
		t.Fatalf("initial acquire: %+v %v %v", l, ok, err)
	}
	if l.Epoch != 1 || l.Holder != "neg-a" || l.Deadline != 1015 {
		t.Fatalf("lease = %+v", l)
	}

	// A challenger is refused while the lease is live, and told the
	// incumbent's deadline.
	l2, ok, err := s.AcquireLease("neg-b", 15)
	if err != nil || ok {
		t.Fatalf("challenger got the lease: %+v %v %v", l2, ok, err)
	}
	if l2.Holder != "neg-a" || l2.Deadline != 1015 {
		t.Fatalf("challenger saw %+v", l2)
	}

	// Renewal keeps the epoch, pushes the deadline.
	now.Store(1010)
	l3, ok, _ := s.AcquireLease("neg-a", 15)
	if !ok || l3.Epoch != 1 || l3.Deadline != 1025 {
		t.Fatalf("renewal = %+v ok=%v", l3, ok)
	}

	// After expiry the challenger takes over with a bumped epoch.
	now.Store(1030)
	l4, ok, _ := s.AcquireLease("neg-b", 15)
	if !ok || l4.Epoch != 2 || l4.Holder != "neg-b" {
		t.Fatalf("takeover = %+v ok=%v", l4, ok)
	}
}

func TestLeaseEpochSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	env, now := testClock(1000)
	s, err := OpenDurable(dir, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.AcquireLease("neg-a", 15)
	now.Store(1020)
	l, _, _ := s.AcquireLease("neg-b", 15) // epoch 2
	if l.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", l.Epoch)
	}
	s.Close()

	// A restarted collector must not reissue epoch <= 2: that would
	// unfence neg-b's deposed predecessor.
	s2, err := OpenDurable(dir, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.LeaseInfo(); got.Epoch != 2 || got.Holder != "neg-b" {
		t.Fatalf("recovered lease %+v", got)
	}
	now.Store(1040)
	l2, ok, _ := s2.AcquireLease("neg-c", 15)
	if !ok || l2.Epoch != 3 {
		t.Fatalf("post-restart takeover = %+v ok=%v", l2, ok)
	}
}

func TestLeaseOverProtocol(t *testing.T) {
	env, _ := testClock(1000)
	srv := NewServer(New(env), t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Addr: addr}
	l, ok, err := c.AcquireLease("neg-a", 30)
	if err != nil || !ok {
		t.Fatalf("acquire over protocol: %+v %v %v", l, ok, err)
	}
	if l.Epoch != 1 || l.Holder != "neg-a" || l.Deadline != 1030 {
		t.Fatalf("lease = %+v", l)
	}
	l2, ok, err := c.AcquireLease("neg-b", 30)
	if err != nil || ok {
		t.Fatalf("challenger over protocol: %+v %v %v", l2, ok, err)
	}
	if l2.Holder != "neg-a" {
		t.Fatalf("challenger saw %+v", l2)
	}
}
