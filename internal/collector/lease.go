package collector

// Negotiator leadership lease. The paper assumes a single matchmaker
// per pool and argues its failure is tolerable because "the
// information maintained by the manager is all soft state" (§4.3) —
// everything except accounting rebuilds from periodic advertisements.
// To run a hot standby negotiator without double-matchmaking, the
// collector (the one component both negotiators already talk to)
// arbitrates a lease: at most one holder before each deadline, a
// monotonically increasing epoch fencing each change of hands. The
// leader stamps the epoch into its MATCH notifications; customer
// agents reject epochs below the highest they have seen, so a deposed
// leader that has not yet noticed its deposition cannot hand out
// resources the new leader is also granting.

// DefaultLeaseTTL is the lease duration granted when the requester
// does not specify one, in pool-clock seconds. Short enough that
// failover happens within a few heartbeats, long enough that a missed
// heartbeat or two does not depose a healthy leader.
const DefaultLeaseTTL int64 = 15

// Lease is the pool's negotiator-leadership state.
type Lease struct {
	// Holder names the negotiator currently holding the lease; empty
	// when no lease has ever been granted.
	Holder string `json:"holder"`
	// Epoch increments every time the lease changes hands (never on
	// renewal). It is the fencing token stamped into MATCH envelopes.
	Epoch uint64 `json:"epoch"`
	// Deadline is the absolute pool time (Unix seconds) at which the
	// lease expires unless renewed.
	Deadline int64 `json:"deadline"`
}

// AcquireLease requests (or renews) the leadership lease for holder,
// for ttl seconds (<= 0 selects DefaultLeaseTTL). The transition is
// journaled before it takes effect, so a granted lease's epoch
// survives a collector crash — without that, a restarted collector
// could re-issue an old epoch and unfence a deposed leader's stale
// matches.
//
// Returns the resulting lease state and whether holder now owns it.
// When the lease is held by someone else and unexpired, granted is
// false and the returned state describes the incumbent, giving the
// standby the exact deadline to wait out.
func (s *Store) AcquireLease(holder string, ttl int64) (lease Lease, granted bool, err error) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.env.Now()
	cur := s.lease
	next := cur
	switch {
	case cur.Holder == holder && holder != "":
		// Renewal: same holder, same epoch, pushed deadline. Also the
		// path a crashed-and-restarted incumbent re-enters by, even
		// after its deadline passed: no one else took over, so no epoch
		// bump is needed.
	case cur.Holder != "" && cur.Deadline > now:
		return cur, false, nil // incumbent still fenced in
	default:
		next.Holder = holder
		next.Epoch = cur.Epoch + 1
	}
	next.Deadline = now + ttl
	if err := s.journalLocked(persistRecord{
		Op: opLease, Holder: next.Holder, Epoch: next.Epoch, Deadline: next.Deadline,
	}); err != nil {
		// Not durably fenced — not granted. In-memory state is left
		// untouched so the incumbent (if any) keeps its standing.
		return cur, false, err
	}
	s.lease = next
	s.mLeaseGrants.Inc()
	if next.Epoch != cur.Epoch {
		s.mLeaseTakeovers.Inc()
	}
	return next, true, nil
}

// LeaseInfo reports the current lease state without mutating it. The
// caller judges expiry against its own clock reading.
func (s *Store) LeaseInfo() Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lease
}
