package collector

import (
	"testing"

	"repro/internal/classad"
)

func TestQueryProject(t *testing.T) {
	s := New(nil)
	machine := classad.Figure1()
	if err := s.Update(machine, 0); err != nil {
		t.Fatal(err)
	}
	q := classad.MustParse(`[ Constraint = other.Memory >= 32 ]`)
	got := s.QueryProject(q, []string{"Arch", "Memory", "Rank"})
	if len(got) != 1 {
		t.Fatalf("matched %d", len(got))
	}
	p := got[0]
	// Name always included; projected attrs present; others gone.
	if name, _ := p.Eval("Name").StringVal(); name != "leonardo.cs.wisc.edu" {
		t.Errorf("Name = %q", name)
	}
	if v := p.Eval("Arch"); !v.Identical(classad.Str("INTEL")) {
		t.Errorf("Arch = %v", v)
	}
	if v := p.Eval("Memory"); !v.Identical(classad.Int(64)) {
		t.Errorf("Memory = %v", v)
	}
	if _, ok := p.Lookup("OpSys"); ok {
		t.Error("unprojected attribute survived")
	}
	if _, ok := p.Lookup("Constraint"); ok {
		t.Error("Constraint survived projection")
	}
	// The Rank expression was evaluated to a literal (undefined here,
	// since there is no match candidate during projection).
	if e, ok := p.Lookup("Rank"); ok {
		if e.String() != "undefined" {
			t.Errorf("projected Rank = %s, want evaluated literal", e.String())
		}
	} else {
		t.Error("Rank missing from projection")
	}
	// Projection size is genuinely smaller.
	if p.Len() >= machine.Len() {
		t.Errorf("projection has %d attrs, original %d", p.Len(), machine.Len())
	}
	// Requesting absent attributes is harmless.
	got = s.QueryProject(q, []string{"NoSuchThing"})
	if got[0].Len() != 1 { // just Name
		t.Errorf("projection of absent attr has %d attrs", got[0].Len())
	}
}

func TestQueryProjectOverTCP(t *testing.T) {
	srv, client := startServer(t)
	if err := client.Advertise(classad.Figure1(), 0); err != nil {
		t.Fatal(err)
	}
	_ = srv
	q := classad.MustParse(`[ Constraint = true ]`)
	got, err := client.QueryProject(q, []string{"Arch"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Len() != 2 {
		t.Fatalf("projection over TCP: %v", got)
	}
	if v := got[0].Eval("Arch"); !v.Identical(classad.Str("INTEL")) {
		t.Errorf("Arch = %v", v)
	}
}
