package collector

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/classad"
	"repro/internal/store"
)

// Durable collector state. The paper's pool manager keeps the
// advertisement store in memory and leans on the advertising
// protocol's weak consistency to rebuild it after a restart: every
// agent re-advertises within one period, so the store converges again
// (paper §4.3). That still leaves a window — up to a full advertising
// period — in which the restarted pool manager matches against an
// empty or partial pool, and it loses state that is *not* rebuilt by
// re-advertising: the negotiator leadership lease and its fencing
// epoch. A collector opened with OpenDurable journals every mutation
// through a store.Log, so a restart recovers the exact pre-crash ad
// set (stale ads simply re-expire on replay, their absolute deadlines
// having been persisted) and, critically, the lease epoch keeps its
// monotonicity across crashes.

// persistSnapshotEvery bounds WAL growth: once this many records have
// accumulated since the last snapshot, the next mutation folds the
// whole store into a fresh one.
const persistSnapshotEvery = 512

// Journal operation names.
const (
	opUpdate     = "update"
	opInvalidate = "invalidate"
	opLease      = "lease"
)

// persistRecord is one journaled mutation.
type persistRecord struct {
	Op string `json:"op"`
	// Update: the ad in source syntax, its absolute expiry
	// (0 = never expires), and the advertiser's sequence number
	// (0 = not sequence-aware; a post-recovery delta then mismatches
	// and the advertiser falls back to a full ADVERTISE).
	Ad      string `json:"ad,omitempty"`
	Expires int64  `json:"expires,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	// Invalidate: the withdrawn name.
	Name string `json:"name,omitempty"`
	// Lease: the full post-transition lease state.
	Holder   string `json:"holder,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
	Deadline int64  `json:"deadline,omitempty"`
}

// persistSnapshot is the whole-store image a WAL generation starts
// from.
type persistSnapshot struct {
	Ads   []persistAd `json:"ads"`
	Lease Lease       `json:"lease"`
}

type persistAd struct {
	Ad      string `json:"ad"`
	Expires int64  `json:"expires"`
	Seq     uint64 `json:"seq,omitempty"`
}

// OpenDurable opens (or creates) a durable store rooted at dir,
// replaying any surviving snapshot and WAL into memory. fs selects the
// filesystem (nil for the real one; tests inject a store.FaultFS).
// Expired ads are replayed too and pruned by their original absolute
// deadlines on first access, exactly as if the process had never died.
func OpenDurable(dir string, env *classad.Env, fs store.FS) (*Store, error) {
	s := New(env)
	l, rec, err := store.Open(dir, fs)
	if err != nil {
		return nil, err
	}
	if len(rec.Snapshot) > 0 {
		var snap persistSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			l.Close()
			return nil, fmt.Errorf("collector: corrupt snapshot: %w", err)
		}
		for _, pa := range snap.Ads {
			if err := s.replayUpdate(pa.Ad, pa.Expires, pa.Seq); err != nil {
				l.Close()
				return nil, err
			}
		}
		s.lease = snap.Lease
	}
	for _, raw := range rec.Records {
		var r persistRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			l.Close()
			return nil, fmt.Errorf("collector: corrupt journal record: %w", err)
		}
		switch r.Op {
		case opUpdate:
			if err := s.replayUpdate(r.Ad, r.Expires, r.Seq); err != nil {
				l.Close()
				return nil, err
			}
		case opInvalidate:
			delete(s.ads, classad.Fold(r.Name))
		case opLease:
			s.lease = Lease{Holder: r.Holder, Epoch: r.Epoch, Deadline: r.Deadline}
		default:
			l.Close()
			return nil, fmt.Errorf("collector: unknown journal op %q", r.Op)
		}
	}
	s.log = l
	return s, nil
}

// replayUpdate applies a journaled (or snapshotted) advertisement
// without re-journaling it.
func (s *Store) replayUpdate(src string, expires int64, seq uint64) error {
	ad, err := classad.Parse(src)
	if err != nil {
		return fmt.Errorf("collector: corrupt journaled ad: %w", err)
	}
	name, err := NameOf(ad)
	if err != nil {
		return fmt.Errorf("collector: journaled ad lost its name: %w", err)
	}
	s.ads[classad.Fold(name)] = entry{ad: ad, expires: expires, seq: seq, src: src}
	return nil
}

// journalLocked appends one mutation record, folding the store into a
// fresh snapshot when the WAL has grown past the policy threshold. The
// caller holds s.mu. On a non-durable store it is a no-op. Append
// errors are fail-stop (store.ErrLogBroken thereafter): the caller
// must treat the mutation as unacknowledged.
func (s *Store) journalLocked(r persistRecord) error {
	if s.log == nil {
		return nil
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("collector: journal encode: %w", err)
	}
	if err := s.log.Append(raw); err != nil {
		s.persistErr = err
		return err
	}
	if s.log.SinceSnapshot() >= persistSnapshotEvery {
		if err := s.snapshotLocked(); err != nil {
			s.persistErr = err
			return err
		}
	}
	return nil
}

// snapshotLocked folds the live store into a new snapshot generation.
// The caller holds s.mu.
func (s *Store) snapshotLocked() error {
	s.pruneLocked()
	snap := persistSnapshot{Lease: s.lease, Ads: make([]persistAd, 0, len(s.ads))}
	for _, e := range s.ads {
		snap.Ads = append(snap.Ads, persistAd{Ad: e.ad.String(), Expires: e.expires, Seq: e.seq})
	}
	// Canonical order: map iteration must not leak into the snapshot
	// bytes, or two stores with identical contents persist differently.
	sort.Slice(snap.Ads, func(i, j int) bool { return snap.Ads[i].Seq < snap.Ads[j].Seq })
	raw, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("collector: snapshot encode: %w", err)
	}
	return s.log.Snapshot(raw)
}

// Compact forces a snapshot immediately (tools and tests; the journal
// path snapshots automatically by policy). No-op when not durable.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.snapshotLocked()
}

// PersistErr reports the first persistence failure, if any. A durable
// store whose log broke keeps serving reads and in-memory writes, but
// mutations are no longer acknowledged as durable; the operator should
// restart it (recovery truncates the tear).
func (s *Store) PersistErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistErr
}

// LogStats reports the underlying journal's statistics; ok is false
// for an in-memory store.
func (s *Store) LogStats() (stats store.Stats, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return store.Stats{}, false
	}
	return s.log.Stats(), true
}

// Close releases the journal (no-op for an in-memory store). The store
// must not be mutated afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}
