package collector

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classad"
	"repro/internal/netx"
)

// TestAdExpiryAndRecoveryAfterCollectorOutage exercises the
// advertising protocol's whole failure loop: an ad whose heartbeats
// are interrupted (the collector goes down) expires on schedule, and
// once the collector is back the advertiser's retry loop re-registers
// it — the paper's lifetime/refresh design carrying the pool through
// a collector outage (§4.3).
func TestAdExpiryAndRecoveryAfterCollectorOutage(t *testing.T) {
	var now atomic.Int64
	now.Store(1000)
	env := &classad.Env{
		Now:  func() int64 { return now.Load() },
		Rand: func() float64 { return 0.5 },
	}

	store := New(env)
	srv := NewServer(store, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client := &Client{
		Addr:   addr,
		Dialer: &netx.Dialer{ConnectTimeout: time.Second, IOTimeout: time.Second},
		Retry:  netx.RetryPolicy{Attempts: 3, Base: 5 * time.Millisecond, Seed: 1},
	}

	ad := classad.NewAd()
	ad.SetString(classad.AttrName, "heartbeat.example")
	ad.SetString(classad.AttrType, "Machine")

	// Heartbeat while healthy: the ad is live with a 10s lifetime.
	if err := client.Advertise(ad, 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Lookup("heartbeat.example"); !ok {
		t.Fatal("advertised ad not in store")
	}

	// The collector dies mid-heartbeat stream; further refreshes fail
	// even after the client's own retries.
	srv.Close()
	if err := client.Advertise(ad, 10); err == nil {
		t.Fatal("advertise to a dead collector succeeded")
	}

	// The un-refreshed ad expires exactly on schedule.
	now.Add(9)
	if _, ok := store.Lookup("heartbeat.example"); !ok {
		t.Fatal("ad expired before its lifetime elapsed")
	}
	now.Add(2) // past the 10s lifetime
	if _, ok := store.Lookup("heartbeat.example"); ok {
		t.Fatal("interrupted ad did not expire on schedule")
	}

	// The collector comes back on the same address (a restart). The
	// advertiser's periodic retry loop reconnects and the ad
	// reappears without any other coordination.
	store2 := New(env)
	srv2 := NewServer(store2, t.Logf)
	if err := rebind(t, srv2, addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := client.Advertise(ad, 10); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("advertising loop never reconnected to the restarted collector")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := store2.Lookup("heartbeat.example"); !ok {
		t.Fatal("ad not re-established after collector recovery")
	}
}

// rebind listens on a specific released address, retrying briefly in
// case the kernel has not finished tearing the old listener down.
func rebind(t *testing.T, srv *Server, addr string) error {
	t.Helper()
	var err error
	for i := 0; i < 100; i++ {
		var ln net.Listener
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			srv.Serve(ln)
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return err
}
