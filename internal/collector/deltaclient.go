package collector

// Client-side delta advertising: a DeltaAdvertiser wraps a Client,
// remembers the last ad it successfully established per name, and
// refreshes with UPDATE_DELTA envelopes carrying only what changed —
// an empty delta for the steady-state unchanged heartbeat. Any
// sequence mismatch (collector restarted, delta lost, another
// advertiser raced) falls back to a full ADVERTISE, re-establishing
// the base the next deltas build on.

import (
	"strings"
	"sync"

	"repro/internal/classad"
	"repro/internal/protocol"
)

// AdvertiseSeq sends a full ad with an explicit sequence number, the
// base future deltas patch.
func (c *Client) AdvertiseSeq(ad *classad.Ad, lifetime int64, seq uint64) error {
	reply, err := c.roundTrip(&protocol.Envelope{
		Type: protocol.TypeAdvertise, Ad: protocol.EncodeAd(ad),
		Lifetime: lifetime, Seq: seq,
	})
	if err != nil {
		return err
	}
	return ackOrError(reply)
}

// AdvertiseDelta refreshes the ad stored under name with only the
// changed attributes and removals, against base sequence baseSeq. A
// sequence mismatch surfaces as an error whose text carries
// ErrSeqMismatch's sentinel; IsSeqMismatch recognizes it.
func (c *Client) AdvertiseDelta(name string, baseSeq, seq uint64, changes *classad.Ad, removed []string, lifetime int64) error {
	env := &protocol.Envelope{
		Type: protocol.TypeUpdateDelta, Name: name,
		BaseSeq: baseSeq, Seq: seq, Removed: removed, Lifetime: lifetime,
	}
	if changes != nil && changes.Len() > 0 {
		env.Ad = protocol.EncodeAd(changes)
	}
	reply, err := c.roundTrip(env)
	if err != nil {
		return err
	}
	return ackOrError(reply)
}

// IsSeqMismatch reports whether an AdvertiseDelta error is the
// collector rejecting the delta's base sequence — the signal to fall
// back to a full ADVERTISE. The check is textual because the verdict
// crosses the wire as an ERROR reason.
func IsSeqMismatch(err error) bool {
	return err != nil && strings.Contains(err.Error(), ErrSeqMismatch.Error())
}

// DeltaAdvertiser is the stateful refresh helper daemon heartbeat
// loops use in place of repeated Client.Advertise calls.
type DeltaAdvertiser struct {
	c *Client

	mu   sync.Mutex
	last map[string]*baseAd

	// Stats (cumulative, for logs and tests).
	fulls, deltas, fallbacks int
}

// baseAd is the last state the collector acknowledged for one name.
type baseAd struct {
	ad  *classad.Ad
	seq uint64
}

// NewDeltaAdvertiser wraps c.
func NewDeltaAdvertiser(c *Client) *DeltaAdvertiser {
	return &DeltaAdvertiser{c: c, last: make(map[string]*baseAd)}
}

// Advertise establishes or refreshes ad at the collector, choosing the
// cheapest correct envelope: a full ADVERTISE the first time, an
// UPDATE_DELTA (possibly empty — the unchanged heartbeat) afterwards,
// and a full re-ADVERTISE whenever the collector rejects the delta's
// base sequence.
func (da *DeltaAdvertiser) Advertise(ad *classad.Ad, lifetime int64) error {
	name, err := NameOf(ad)
	if err != nil {
		return err
	}
	key := classad.Fold(name)
	da.mu.Lock()
	base := da.last[key]
	da.mu.Unlock()
	if base == nil {
		return da.full(key, ad, lifetime, 1)
	}
	changes, removed := DiffAds(base.ad, ad)
	seq := base.seq + 1
	err = da.c.AdvertiseDelta(name, base.seq, seq, changes, removed, lifetime)
	if IsSeqMismatch(err) {
		da.mu.Lock()
		da.fallbacks++
		da.mu.Unlock()
		return da.full(key, ad, lifetime, seq)
	}
	if err != nil {
		return err
	}
	da.mu.Lock()
	da.deltas++
	da.last[key] = &baseAd{ad: ad.Copy(), seq: seq}
	da.mu.Unlock()
	return nil
}

// full sends a complete ad and records it as the new delta base.
func (da *DeltaAdvertiser) full(key string, ad *classad.Ad, lifetime int64, seq uint64) error {
	if err := da.c.AdvertiseSeq(ad, lifetime, seq); err != nil {
		return err
	}
	da.mu.Lock()
	da.fulls++
	da.last[key] = &baseAd{ad: ad.Copy(), seq: seq}
	da.mu.Unlock()
	return nil
}

// Forget drops the remembered base for name (e.g. after invalidating
// it), so the next Advertise sends a full ad.
func (da *DeltaAdvertiser) Forget(name string) {
	da.mu.Lock()
	delete(da.last, classad.Fold(name))
	da.mu.Unlock()
}

// Stats reports how many full ads, deltas, and mismatch fallbacks this
// advertiser has sent.
func (da *DeltaAdvertiser) Stats() (fulls, deltas, fallbacks int) {
	da.mu.Lock()
	defer da.mu.Unlock()
	return da.fulls, da.deltas, da.fallbacks
}
