package collector

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/classad"
)

// tickEnv is a classad.Env whose clock the test advances manually.
type tickEnv struct {
	mu  sync.Mutex
	now int64
}

func (e *tickEnv) env() *classad.Env {
	return &classad.Env{
		Now: func() int64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.now
		},
		Rand: func() float64 { return 0.5 },
	}
}

func (e *tickEnv) advance(d int64) {
	e.mu.Lock()
	e.now += d
	e.mu.Unlock()
}

func namedAd(name string, mem int64) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Name", name)
	ad.SetString("Type", "Machine")
	ad.SetInt("Memory", mem)
	return ad
}

func TestStoreUpdateAndLookup(t *testing.T) {
	s := New(nil)
	if err := s.Update(namedAd("m1", 64), 0); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	ad, ok := s.Lookup("M1") // case-insensitive
	if !ok {
		t.Fatal("lookup failed")
	}
	if mem, _ := ad.Eval("Memory").IntVal(); mem != 64 {
		t.Errorf("Memory = %d", mem)
	}
	// Re-advertising replaces.
	if err := s.Update(namedAd("m1", 128), 0); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("len after refresh = %d, want 1", s.Len())
	}
	ad, _ = s.Lookup("m1")
	if mem, _ := ad.Eval("Memory").IntVal(); mem != 128 {
		t.Errorf("Memory after refresh = %d, want 128", mem)
	}
}

func TestStoreRequiresName(t *testing.T) {
	s := New(nil)
	if err := s.Update(classad.MustParse("[Memory = 64]"), 0); err == nil {
		t.Error("nameless ad accepted")
	}
	if err := s.Update(classad.MustParse("[Name = 5]"), 0); err == nil {
		t.Error("non-string Name accepted")
	}
}

func TestStoreExpiry(t *testing.T) {
	clock := &tickEnv{}
	s := New(clock.env())
	if err := s.Update(namedAd("short", 1), 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(namedAd("long", 1), 1000); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	clock.advance(11)
	if s.Len() != 1 {
		t.Errorf("after expiry len = %d, want 1", s.Len())
	}
	if _, ok := s.Lookup("short"); ok {
		t.Error("expired ad still visible")
	}
	if _, ok := s.Lookup("long"); !ok {
		t.Error("live ad pruned")
	}
	// A refresh extends the lease.
	if err := s.Update(namedAd("long", 1), 5); err != nil {
		t.Fatal(err)
	}
	clock.advance(4)
	if _, ok := s.Lookup("long"); !ok {
		t.Error("refreshed ad expired early")
	}
	clock.advance(2)
	if _, ok := s.Lookup("long"); ok {
		t.Error("refreshed ad did not expire")
	}
}

func TestStoreInvalidate(t *testing.T) {
	s := New(nil)
	_ = s.Update(namedAd("m1", 64), 0)
	if !s.Invalidate("M1") {
		t.Error("invalidate missed existing ad")
	}
	if s.Invalidate("m1") {
		t.Error("second invalidate reported success")
	}
	if s.Len() != 0 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestStoreQueryOneWay(t *testing.T) {
	s := New(nil)
	for i := 0; i < 5; i++ {
		_ = s.Update(namedAd(fmt.Sprintf("m%d", i), int64(32*(i+1))), 0)
	}
	query := classad.MustParse("[ Constraint = other.Memory >= 96 ]")
	got := s.Query(query)
	if len(got) != 3 {
		t.Errorf("query matched %d ads, want 3", len(got))
	}
	// A candidate's own constraint is ignored by one-way queries.
	fussy := namedAd("fussy", 256)
	fussy.Set("Constraint", classad.Lit(classad.Bool(false)))
	_ = s.Update(fussy, 0)
	if len(s.Query(query)) != 4 {
		t.Error("one-way query consulted the candidate's constraint")
	}
}

func TestStoreAllSortedDeterministic(t *testing.T) {
	s := New(nil)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		_ = s.Update(namedAd(n, 1), 0)
	}
	all := s.All()
	names := make([]string, len(all))
	for i, ad := range all {
		names[i], _ = ad.Eval("Name").StringVal()
	}
	if names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Errorf("order = %v", names)
	}
}

func TestStoreSelectType(t *testing.T) {
	s := New(nil)
	_ = s.Update(namedAd("m1", 64), 0)
	jobAd := classad.NewAd()
	jobAd.SetString("Name", "job-1")
	jobAd.SetString("Type", "Job")
	_ = s.Update(jobAd, 0)
	if got := s.SelectType("Machine"); len(got) != 1 {
		t.Errorf("Machine ads = %d, want 1", len(got))
	}
	if got := s.SelectType("job"); len(got) != 1 { // case-insensitive
		t.Errorf("Job ads = %d, want 1", len(got))
	}
	if got := s.SelectType("Printer"); len(got) != 0 {
		t.Errorf("Printer ads = %d, want 0", len(got))
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := New(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.Update(namedAd(fmt.Sprintf("m%d-%d", g, i%10), int64(i)), 0)
				s.Query(classad.MustParse("[Constraint = other.Memory >= 0]"))
				s.Invalidate(fmt.Sprintf("m%d-%d", g, (i+5)%10))
			}
		}(g)
	}
	wg.Wait()
}
