package collector

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/classad"
	"repro/internal/netx"
	"repro/internal/protocol"
)

// fastRetry keeps transport-failure tests quick: two attempts,
// millisecond backoff.
var fastRetry = netx.RetryPolicy{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond}

// cannedServer accepts one connection at a time, reads one envelope
// and answers with the scripted reply, until closed.
func cannedServer(t *testing.T, reply *protocol.Envelope) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := protocol.Read(bufio.NewReader(c)); err != nil {
					return
				}
				protocol.Write(c, reply)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func trueQuery(t *testing.T) *classad.Ad {
	t.Helper()
	q := classad.NewAd()
	if err := q.SetExprString(classad.AttrConstraint, "true"); err != nil {
		t.Fatal(err)
	}
	return q
}

// TestQueryProjectErrorReply: an application-level ERROR becomes the
// client's error verbatim and is not retried.
func TestQueryProjectErrorReply(t *testing.T) {
	addr := cannedServer(t, protocol.Errorf("store on fire"))
	c := &Client{Addr: addr, Retry: fastRetry}
	_, err := c.QueryProject(trueQuery(t), nil)
	if err == nil || !strings.Contains(err.Error(), "store on fire") {
		t.Fatalf("err = %v, want the server's reason", err)
	}
}

// TestQueryProjectUnexpectedReply: a reply of the wrong type is an
// error naming the type, not a silent empty result.
func TestQueryProjectUnexpectedReply(t *testing.T) {
	addr := cannedServer(t, &protocol.Envelope{Type: protocol.TypeAck})
	c := &Client{Addr: addr, Retry: fastRetry}
	_, err := c.QueryProject(trueQuery(t), nil)
	if err == nil || !strings.Contains(err.Error(), "unexpected reply ACK") {
		t.Fatalf("err = %v, want unexpected-reply", err)
	}
}

// TestQueryProjectBadAdInReply: a QUERY_REPLY carrying an unparsable
// ad fails the whole query — partial decodes are never returned.
func TestQueryProjectBadAdInReply(t *testing.T) {
	addr := cannedServer(t, &protocol.Envelope{
		Type: protocol.TypeQueryReply,
		Ads:  []string{"[ Name = \"ok\" ]", "[ this is not a classad"},
	})
	c := &Client{Addr: addr, Retry: fastRetry}
	ads, err := c.QueryProject(trueQuery(t), nil)
	if err == nil {
		t.Fatalf("got %d ads and no error, want decode failure", len(ads))
	}
}

// TestQueryProjectTransportFailure: nothing listening means a dial
// error after the retry budget, not a hang.
func TestQueryProjectTransportFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // the port is now dead
	c := &Client{Addr: addr, Retry: fastRetry}
	start := time.Now()
	_, err = c.QueryProject(trueQuery(t), nil)
	if err == nil {
		t.Fatal("query against a dead port succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("failure took %v; retry budget not honoured", elapsed)
	}
}

// TestQueryProjectEmptyReply: zero matches decode to an empty,
// non-nil slice.
func TestQueryProjectEmptyReply(t *testing.T) {
	addr := cannedServer(t, &protocol.Envelope{Type: protocol.TypeQueryReply})
	c := &Client{Addr: addr, Retry: fastRetry}
	ads, err := c.QueryProject(trueQuery(t), []string{"Name"})
	if err != nil {
		t.Fatal(err)
	}
	if ads == nil || len(ads) != 0 {
		t.Fatalf("ads = %#v, want empty non-nil slice", ads)
	}
}
