package collector

import (
	"testing"

	"repro/internal/classad"
	"repro/internal/obs"
)

// TestAdvertiseLintCounters: an instrumented collector scores incoming
// ads with the static analyzer — totals plus a per-code breakdown —
// without ever rejecting them.
func TestAdvertiseLintCounters(t *testing.T) {
	store := New(nil)
	srv := NewServer(store, nil)
	o := obs.New()
	srv.Instrument(o)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &Client{Addr: addr}
	clean := classad.MustParse(`[ Name = "clean"; Type = "Machine"; Memory = 64;
		Rank = other.Mips; Constraint = other.Type == "Job" ]`)
	dirty := classad.MustParse(`[ Name = "dirty"; Type = "Job"; Rank = other.Mips;
		Constraint = other.Memory > 64 && other.Memory < 32 ]`)
	for _, ad := range []*classad.Ad{clean, dirty} {
		if err := client.Advertise(ad, 60); err != nil {
			t.Fatalf("advertise %v: %v", ad, err)
		}
	}

	reg := o.Registry()
	if got := reg.Counter("collector_lint_errors_total").Value(); got != 1 {
		t.Errorf("collector_lint_errors_total = %d, want 1", got)
	}
	if got := reg.Counter("collector_lint_cad201_total").Value(); got != 1 {
		t.Errorf("collector_lint_cad201_total = %d, want 1", got)
	}
	// The unsatisfiable ad is stored regardless: lint observes, it
	// does not gatekeep.
	if got := len(store.Query(classad.NewAd())); got != 2 {
		t.Errorf("stored ads = %d, want 2", got)
	}
}

// TestUninstrumentedCollectorSkipsLint: without Instrument the
// analyzer never runs and advertising still works.
func TestUninstrumentedCollectorSkipsLint(t *testing.T) {
	srv := NewServer(New(nil), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ad := classad.MustParse(`[ Name = "x"; Constraint = other.Memory > 64 && other.Memory < 32 ]`)
	if err := (&Client{Addr: addr}).Advertise(ad, 60); err != nil {
		t.Fatalf("advertise: %v", err)
	}
}
