package collector

import (
	"testing"

	"repro/internal/classad"
	"repro/internal/obs"
)

// TestAdvertiseLintCounters: an instrumented collector scores incoming
// ads with the static analyzer — totals plus a per-code breakdown —
// without ever rejecting them.
func TestAdvertiseLintCounters(t *testing.T) {
	store := New(nil)
	srv := NewServer(store, nil)
	o := obs.New()
	srv.Instrument(o)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &Client{Addr: addr}
	clean := classad.MustParse(`[ Name = "clean"; Type = "Machine"; Memory = 64;
		Rank = other.Mips; Constraint = other.Type == "Job" ]`)
	dirty := classad.MustParse(`[ Name = "dirty"; Type = "Job"; Rank = other.Mips;
		Constraint = other.Memory > 64 && other.Memory < 32 ]`)
	for _, ad := range []*classad.Ad{clean, dirty} {
		if err := client.Advertise(ad, 60); err != nil {
			t.Fatalf("advertise %v: %v", ad, err)
		}
	}

	reg := o.Registry()
	if got := reg.Counter("collector_lint_errors_total").Value(); got != 1 {
		t.Errorf("collector_lint_errors_total = %d, want 1", got)
	}
	if got := reg.Counter("collector_lint_cad201_total").Value(); got != 1 {
		t.Errorf("collector_lint_cad201_total = %d, want 1", got)
	}
	// The unsatisfiable ad is stored regardless: lint observes, it
	// does not gatekeep.
	if got := len(store.Query(classad.NewAd())); got != 2 {
		t.Errorf("stored ads = %d, want 2", got)
	}
}

// TestBilateralLintCounters exercises the cross-ad pass: each
// advertisement is checked against a sample of stored counterparts,
// counting pairs checked, pairs provably unmatchable, and arrivals no
// counterpart can ever match.
func TestBilateralLintCounters(t *testing.T) {
	store := New(nil)
	srv := NewServer(store, nil)
	o := obs.New()
	srv.Instrument(o)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &Client{Addr: addr}
	machine := classad.MustParse(`[ Name = "m1"; Type = "Machine"; Memory = 64;
		Constraint = other.Memory <= 64 ]`)
	liveJob := classad.MustParse(`[ Name = "ok"; Type = "Job"; Memory = 31;
		Constraint = other.Memory >= 31 ]`)
	// Demands memory no machine has AND exceeds the machine's own cap:
	// provably unmatchable against every stored counterpart.
	deadJob := classad.MustParse(`[ Name = "dead"; Type = "Job"; Memory = 4096;
		Constraint = other.Memory >= 4096 ]`)
	for _, ad := range []*classad.Ad{machine, liveJob, deadJob} {
		if err := client.Advertise(ad, 60); err != nil {
			t.Fatalf("advertise %v: %v", ad, err)
		}
	}

	reg := o.Registry()
	// machine arrives into an empty store (0 pairs); liveJob checks
	// against machine (1 pair, compatible); deadJob checks against
	// machine (1 pair, conflict) — liveJob is no counterpart of the
	// jobs.
	if got := reg.Counter("collector_lint_bilateral_checked_total").Value(); got != 2 {
		t.Errorf("bilateral_checked = %d, want 2", got)
	}
	if got := reg.Counter("collector_lint_bilateral_conflicts_total").Value(); got != 1 {
		t.Errorf("bilateral_conflicts = %d, want 1", got)
	}
	if got := reg.Counter("collector_lint_bilateral_dead_total").Value(); got != 1 {
		t.Errorf("bilateral_dead = %d, want 1", got)
	}
}

// TestUninstrumentedCollectorSkipsLint: without Instrument the
// analyzer never runs and advertising still works.
func TestUninstrumentedCollectorSkipsLint(t *testing.T) {
	srv := NewServer(New(nil), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ad := classad.MustParse(`[ Name = "x"; Constraint = other.Memory > 64 && other.Memory < 32 ]`)
	if err := (&Client{Addr: addr}).Advertise(ad, 60); err != nil {
		t.Fatalf("advertise: %v", err)
	}
}
