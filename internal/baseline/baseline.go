// Package baseline implements the conventional resource management
// model the paper argues against (§2): systems in the style of NQE,
// PBS, LSF and LoadLeveler, where "customers of the system have to
// identify a specific queue to submit to a priori, which then fixes
// the set of resources that may be used, and hinders dynamic
// qualitative resource discovery", and where nothing corresponding to
// a provider-side constraint exists.
//
// The scheduler partitions machines into queues by a static attribute
// chosen at configuration time (architecture, the classic choice) and
// dispatches jobs FCFS within the queue to any machine that is not
// already running a job and has enough memory (the one resource
// quantity conventional job control languages do express). It knows
// nothing about owner policies, current keyboard or load state,
// operating systems the admin did not anticipate, or the preferences
// of either party — those gaps are precisely what experiment E7
// measures against the matchmaker.
package baseline

import (
	"repro/internal/classad"
	"repro/internal/sim"
)

// QueueScheduler is the conventional baseline. It implements
// sim.Scheduler.
type QueueScheduler struct {
	// queueAttr is the static attribute that keys the queues; the
	// canonical configuration uses "Arch".
	queueAttr string
	// checkMemory lets the queue honour a memory request the way a
	// batch system's job control language can.
	checkMemory bool
	// dedicatedOnly restricts dispatch to machines that are not
	// distributively owned — the only configuration an owner of a
	// desktop workstation would tolerate from a scheduler with no
	// policy language. The intrusive variant drops the restriction
	// (and pays for it in owner evictions).
	dedicatedOnly bool
	env           *classad.Env
}

// New builds the deployable baseline: per-architecture queues, memory
// checking, dedicated machines only — the most generous realistic
// configuration of a conventional system in a distributively owned
// environment.
func New(env *classad.Env) *QueueScheduler {
	return &QueueScheduler{queueAttr: "Arch", checkMemory: true, dedicatedOnly: true, env: env}
}

// NewIntrusive builds the variant that dispatches to every machine,
// owner policies be damned. It exists to measure what a conventional
// system would cost resource owners: the simulator counts every
// intrusion as an eviction within a minute.
func NewIntrusive(env *classad.Env) *QueueScheduler {
	return &QueueScheduler{queueAttr: "Arch", checkMemory: true, env: env}
}

// NewCoarse builds a deliberately cruder variant with a single queue
// and no memory checking, for the sensitivity sweep.
func NewCoarse(env *classad.Env) *QueueScheduler {
	return &QueueScheduler{queueAttr: "", checkMemory: false, env: env}
}

// Name implements sim.Scheduler.
func (q *QueueScheduler) Name() string {
	switch {
	case q.queueAttr == "":
		return "single-queue"
	case q.dedicatedOnly:
		return "queues"
	default:
		return "queues-intr"
	}
}

// EnforcesPolicies implements sim.Scheduler: the conventional model
// has no constraint language, so dispatches bypass ad policies.
func (q *QueueScheduler) EnforcesPolicies() bool { return false }

// queueOf derives the queue a job or machine belongs to: the string
// value of the queue attribute ("" when unkeyed, which pools
// everything together). A job names its queue by the same attribute —
// the simulator's jobs require an architecture, which is exactly the
// piece of the constraint a user could express by picking a queue.
func (q *QueueScheduler) queueOf(ad *classad.Ad) string {
	if q.queueAttr == "" {
		return ""
	}
	if s, ok := ad.Eval(q.queueAttr).StringVal(); ok {
		return classad.Fold(s)
	}
	// A job's Arch lives inside its constraint, not as a top-level
	// attribute; recover it the way a user reading the submit file
	// would, by probing which architecture satisfies the constraint.
	// The probe varies only the dimensions a queue system's submit
	// language names; anything else the user required (operating
	// system flavours the admin never made queues for) is invisible,
	// which is precisely the paper's §2 criticism.
	for _, arch := range []string{"INTEL", "SPARC", "ALPHA", "HPPA", "SGI"} {
		for _, opsys := range []string{"SOLARIS251", "LINUX", "IRIX", "OSF1", "HPUX"} {
			probe := classad.NewAd()
			probe.SetString("Type", "Machine")
			probe.SetString(q.queueAttr, arch)
			probe.SetString("OpSys", opsys)
			probe.SetInt("Memory", 1<<20)
			probe.SetInt("Disk", 1<<30)
			probe.SetInt("Mips", 1<<20)
			probe.SetInt("KFlops", 1<<20)
			if classad.EvalConstraint(ad, probe, q.env) {
				return classad.Fold(arch)
			}
		}
	}
	return ""
}

// Assign implements sim.Scheduler: FCFS per queue over the machines
// statically assigned to that queue.
func (q *QueueScheduler) Assign(view *sim.CycleView) []sim.Assignment {
	// Partition machines into queues, shuffling within each queue as
	// a round-robin dispatcher effectively does — otherwise a job
	// would deterministically retry the same unsuitable machine
	// forever, which is unfair to the baseline.
	machinesByQueue := make(map[string][]int)
	used := make([]bool, len(view.MachineAds))
	for i, mad := range view.MachineAds {
		if q.dedicatedOnly && mad.Eval("DistributivelyOwned").IsTrue() {
			continue // the admin could not enroll this machine
		}
		key := q.queueOf(mad)
		machinesByQueue[key] = append(machinesByQueue[key], i)
	}
	env := q.env
	if env == nil {
		env = classad.DefaultEnv()
	}
	for _, list := range machinesByQueue {
		for i := len(list) - 1; i > 0; i-- {
			j := int(env.Rand() * float64(i+1))
			list[i], list[j] = list[j], list[i]
		}
	}
	var out []sim.Assignment
	for j, jad := range view.JobAds {
		queue := q.queueOf(jad)
		for _, mi := range machinesByQueue[queue] {
			if used[mi] {
				continue
			}
			if q.checkMemory && !memoryFits(jad, view.MachineAds[mi]) {
				continue
			}
			used[mi] = true
			out = append(out, sim.Assignment{Job: j, Machine: mi})
			break
		}
	}
	return out
}

// memoryFits checks the one quantitative requirement a conventional
// job control language expresses.
func memoryFits(job, machine *classad.Ad) bool {
	want, okJ := job.Eval("Memory").IntVal()
	have, okM := machine.Eval("Memory").IntVal()
	if !okJ || !okM {
		return true
	}
	return have >= want
}
