package baseline

import (
	"fmt"
	"testing"

	"repro/internal/classad"
	"repro/internal/sim"
)

func machineAd(name, arch string, mem int64) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Type", "Machine")
	ad.SetString("Name", name)
	ad.SetString("Arch", arch)
	ad.SetInt("Memory", mem)
	return ad
}

func jobAd(arch string, mem int64) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Type", "Job")
	ad.SetString("Owner", "u")
	ad.SetInt("Memory", mem)
	src := fmt.Sprintf(`other.Type == "Machine" && other.Arch == %q && other.Memory >= self.Memory`, arch)
	if err := ad.SetExprString("Constraint", src); err != nil {
		panic(err)
	}
	return ad
}

func TestQueueOfMachine(t *testing.T) {
	q := New(nil)
	if got := q.queueOf(machineAd("m", "INTEL", 64)); got != "intel" {
		t.Errorf("queueOf machine = %q", got)
	}
}

func TestQueueOfJobViaConstraintProbe(t *testing.T) {
	q := New(nil)
	if got := q.queueOf(jobAd("SPARC", 32)); got != "sparc" {
		t.Errorf("queueOf job = %q", got)
	}
	if got := q.queueOf(jobAd("INTEL", 32)); got != "intel" {
		t.Errorf("queueOf job = %q", got)
	}
}

func TestAssignWithinQueue(t *testing.T) {
	q := New(nil)
	view := &sim.CycleView{
		JobAds: []*classad.Ad{
			jobAd("INTEL", 32),
			jobAd("SPARC", 32),
			jobAd("ALPHA", 32), // no queue serves it
		},
		MachineAds: []*classad.Ad{
			machineAd("i1", "INTEL", 64),
			machineAd("s1", "SPARC", 64),
		},
	}
	got := q.Assign(view)
	if len(got) != 2 {
		t.Fatalf("assignments = %d, want 2", len(got))
	}
	for _, a := range got {
		jq := q.queueOf(view.JobAds[a.Job])
		mq := q.queueOf(view.MachineAds[a.Machine])
		if jq != mq {
			t.Errorf("cross-queue assignment %v: %s vs %s", a, jq, mq)
		}
	}
}

func TestAssignHonoursMemoryRequest(t *testing.T) {
	q := New(nil)
	view := &sim.CycleView{
		JobAds:     []*classad.Ad{jobAd("INTEL", 128)},
		MachineAds: []*classad.Ad{machineAd("small", "INTEL", 64), machineAd("big", "INTEL", 256)},
	}
	got := q.Assign(view)
	if len(got) != 1 {
		t.Fatalf("assignments = %d", len(got))
	}
	if name, _ := view.MachineAds[got[0].Machine].Eval("Name").StringVal(); name != "big" {
		t.Errorf("assigned %q, want the machine with enough memory", name)
	}
}

func TestAssignMachineUsedOnce(t *testing.T) {
	q := New(nil)
	view := &sim.CycleView{
		JobAds:     []*classad.Ad{jobAd("INTEL", 16), jobAd("INTEL", 16)},
		MachineAds: []*classad.Ad{machineAd("only", "INTEL", 64)},
	}
	if got := q.Assign(view); len(got) != 1 {
		t.Errorf("assignments = %d, want 1 per machine", len(got))
	}
}

func TestCoarseVariantIgnoresEverything(t *testing.T) {
	q := NewCoarse(nil)
	view := &sim.CycleView{
		JobAds:     []*classad.Ad{jobAd("INTEL", 128)},
		MachineAds: []*classad.Ad{machineAd("wrong", "SPARC", 16)},
	}
	// Single queue, no memory check: it will happily dispatch the
	// job somewhere it cannot run — the simulator then counts the
	// failed dispatch.
	if got := q.Assign(view); len(got) != 1 {
		t.Errorf("coarse variant made %d assignments, want 1 (wrong but confident)", len(got))
	}
	if q.EnforcesPolicies() {
		t.Error("baseline must report that it bypasses policies")
	}
	if q.Name() != "single-queue" || New(nil).Name() != "queues" {
		t.Error("scheduler names wrong")
	}
}

// TestMatchmakerBeatsQueuesOnDesktopPool is experiment E7's shape
// claim in miniature: on a distributively owned (desktop-heavy) pool,
// the matchmaker's policy awareness yields more completed work and
// less waste than the conventional queue scheduler given the identical
// workload and machines.
func TestMatchmakerBeatsQueuesOnDesktopPool(t *testing.T) {
	if testing.Short() {
		t.Skip("saturated-pool baseline comparison; skipped in -short mode")
	}
	// A saturated pool, half dedicated and half desktop: the
	// matchmaker serves both kinds because owner policy travels
	// inside the ad; the deployable queue baseline can only enroll
	// the dedicated half, so the desktop cycles are invisible to it.
	cfg := sim.Config{
		Pool: sim.PoolSpec{
			Machines:        30,
			DesktopFraction: 0.5,
			MeanOwnerActive: 3600,
			MeanOwnerIdle:   7200,
			Classes:         1,
		},
		Workload: sim.JobSpec{Jobs: 400, MeanRuntime: 3600,
			Users: []string{"u1", "u2", "u3"}},
		Seed:     17,
		Duration: 86400,
	}
	mk := func(sched func(env *classad.Env) sim.Scheduler) sim.Metrics {
		c := cfg
		s := sim.New(c)
		if sched != nil {
			c.Scheduler = sched(s.Env())
			s = sim.New(c)
		}
		return s.Run()
	}
	matchmaker := mk(nil)
	queues := mk(func(env *classad.Env) sim.Scheduler { return New(env) })
	t.Logf("matchmaker: %s", matchmaker)
	t.Logf("queues:     %s", queues)
	if matchmaker.CompletedWork <= queues.CompletedWork {
		t.Errorf("matchmaker completed %v cpu-s, queues %v — the paper's shape claim fails",
			matchmaker.CompletedWork, queues.CompletedWork)
	}
	// The margin should be roughly the harvestable desktop capacity,
	// i.e. clearly more than noise.
	if matchmaker.CompletedWork < 1.15*queues.CompletedWork {
		t.Errorf("matchmaker's harvest advantage too small: %v vs %v",
			matchmaker.CompletedWork, queues.CompletedWork)
	}
	// The deployable baseline never touches desktops, so it never
	// gets evicted; the matchmaker's evictions are the price of the
	// cycles it harvested.
	if queues.Evictions != 0 {
		t.Errorf("deployable queues evicted %d times — they should not be on desktops at all",
			queues.Evictions)
	}
}

// TestIntrusiveQueuesViolateOwnership measures what the conventional
// model would cost owners if deployed on their machines anyway: it can
// rival the matchmaker's raw throughput only by intruding on owners
// thousands of times — which is why such systems were never deployed
// on distributively owned desktops (paper §1–§2).
func TestIntrusiveQueuesViolateOwnership(t *testing.T) {
	if testing.Short() {
		t.Skip("saturated-pool baseline comparison; skipped in -short mode")
	}
	cfg := sim.Config{
		Pool: sim.PoolSpec{
			Machines:        20,
			DesktopFraction: 1.0,
			MeanOwnerActive: 7200,
			MeanOwnerIdle:   7200,
			Classes:         1,
		},
		Workload: sim.JobSpec{Jobs: 300, MeanRuntime: 2400,
			Users: []string{"u1", "u2"}},
		Seed:     29,
		Duration: 86400,
	}
	run := func(sched func(env *classad.Env) sim.Scheduler) sim.Metrics {
		c := cfg
		s := sim.New(c)
		if sched != nil {
			c.Scheduler = sched(s.Env())
			s = sim.New(c)
		}
		return s.Run()
	}
	matchmaker := run(nil)
	intrusive := run(func(env *classad.Env) sim.Scheduler { return NewIntrusive(env) })
	t.Logf("matchmaker: %s", matchmaker)
	t.Logf("intrusive:  %s", intrusive)
	if intrusive.Evictions < 5*matchmaker.Evictions {
		t.Errorf("intrusive queues evicted %d vs matchmaker %d — expected massive owner disruption",
			intrusive.Evictions, matchmaker.Evictions)
	}
	if intrusive.WastedWork <= matchmaker.WastedWork {
		t.Errorf("intrusive waste %v <= matchmaker %v", intrusive.WastedWork, matchmaker.WastedWork)
	}
}

// TestSchedulersTieOnDedicatedPool: with no owner policies in play and
// a single architecture, conventional queues are adequate — the
// matchmaker's advantage vanishes rather than being an artifact.
func TestSchedulersTieOnDedicatedPool(t *testing.T) {
	run := func(sched func(env *classad.Env) sim.Scheduler) sim.Metrics {
		cfg := sim.Config{
			Pool:     sim.PoolSpec{Machines: 20, DesktopFraction: 0, Classes: 1},
			Workload: sim.JobSpec{Jobs: 60, MeanRuntime: 1800, Users: []string{"u"}},
			Seed:     23,
			Duration: 2 * 86400,
		}
		s := sim.New(cfg)
		if sched != nil {
			cfg.Scheduler = sched(s.Env())
			s = sim.New(cfg)
		}
		return s.Run()
	}
	matchmaker := run(nil)
	queues := run(func(env *classad.Env) sim.Scheduler { return New(env) })
	if matchmaker.Completed != 60 || queues.Completed != 60 {
		t.Errorf("both should finish the batch: matchmaker=%d queues=%d",
			matchmaker.Completed, queues.Completed)
	}
}
