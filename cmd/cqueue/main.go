// Command cqueue lists the jobs in a customer agent's queue — the
// paper's "tools to check on the status of job queues", implemented as
// a one-way query against the agent.
//
// Usage:
//
//	cqueue -agent HOST:PORT [-constraint 'EXPR'] [-long]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/classad"
	"repro/internal/netx"
	"repro/internal/protocol"
)

func main() {
	agentAddr := flag.String("agent", "127.0.0.1:9620", "customer agent address")
	constraint := flag.String("constraint", "true", "query constraint over other.*")
	long := flag.Bool("long", false, "print whole ads")
	flag.Parse()

	query := classad.NewAd()
	if err := query.SetExprString(classad.AttrConstraint, *constraint); err != nil {
		fatalf("bad constraint: %v", err)
	}
	ads, err := queryAgent(*agentAddr, query)
	if err != nil {
		fatalf("%v", err)
	}
	if *long {
		for _, ad := range ads {
			fmt.Println(ad.Pretty())
			fmt.Println()
		}
		fmt.Printf("%d job(s)\n", len(ads))
		return
	}
	fmt.Printf("%-6s %-10s %-12s %-24s %8s %6s\n",
		"ID", "OWNER", "STATUS", "HOST", "DONE%", "EVICT")
	for _, ad := range ads {
		done, _ := ad.Eval("WorkDone").NumberVal()
		total, _ := ad.Eval("WorkTotal").NumberVal()
		pct := 0.0
		if total > 0 {
			pct = 100 * done / total
		}
		id, _ := ad.Eval("JobId").IntVal()
		evict, _ := ad.Eval("Evictions").IntVal()
		fmt.Printf("%-6d %-10s %-12s %-24s %7.1f%% %6d\n",
			id, str(ad, "Owner"), str(ad, "JobStatus"), str(ad, "RemoteHost"), pct, evict)
	}
	fmt.Printf("%d job(s)\n", len(ads))
}

func queryAgent(addr string, query *classad.Ad) ([]*classad.Ad, error) {
	conn, err := netx.DefaultDialer.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := protocol.Write(conn, &protocol.Envelope{
		Type: protocol.TypeQuery, Ad: protocol.EncodeAd(query),
	}); err != nil {
		return nil, err
	}
	reply, err := protocol.Read(bufio.NewReader(conn))
	if err != nil {
		return nil, err
	}
	if reply.Type == protocol.TypeError {
		return nil, errors.New(reply.Reason)
	}
	if reply.Type != protocol.TypeQueryReply {
		return nil, fmt.Errorf("unexpected reply %s", reply.Type)
	}
	out := make([]*classad.Ad, 0, len(reply.Ads))
	for _, s := range reply.Ads {
		ad, err := protocol.DecodeAd(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ad)
	}
	return out, nil
}

func str(ad *classad.Ad, attr string) string {
	if s, ok := ad.Eval(attr).StringVal(); ok {
		return s
	}
	return "-"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cqueue: "+format+"\n", args...)
	os.Exit(2)
}
