// Command canalyze explains why a request does or does not match a
// pool — the diagnostic tool the paper's §5 future work calls for
// ("identifying constraints which can never be satisfied by the
// pool").
//
// Usage:
//
//	canalyze -job job.ad -pool HOST:PORT          analyze against a live pool
//	canalyze -job job.ad machines.ads...          analyze against ad files
//
// The report shows, clause by clause, how much of the pool each
// conjunct of the job's constraint matches, flags clauses no machine
// satisfies, and separates "can't serve you" from "won't serve you".
// Static verdicts ride along: clauses the bilateral analyzer proves
// can never be true against specific offers (under any clock or random
// seed), and index-friendliness findings (CAD401/CAD402) when the
// constraint defeats the matchmaker's offer index.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/matchmaker"
)

func main() {
	jobFile := flag.String("job", "", "request classad file")
	poolAddr := flag.String("pool", "", "collector address (alternative to machine ad files)")
	flag.Parse()
	if *jobFile == "" {
		fatalf("-job is required")
	}
	data, err := os.ReadFile(*jobFile)
	if err != nil {
		fatalf("%v", err)
	}
	job, err := classad.Parse(string(data))
	if err != nil {
		fatalf("%s: %v", *jobFile, err)
	}

	var offers []*classad.Ad
	if *poolAddr != "" {
		client := &collector.Client{Addr: *poolAddr}
		query := classad.MustParse(`[ Constraint = other.Type != "Job" ]`)
		offers, err = client.Query(query)
		if err != nil {
			fatalf("query: %v", err)
		}
	} else {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fatalf("%v", err)
			}
			ads, err := classad.ParseMulti(string(data))
			if err != nil {
				ad, err2 := classad.Parse(string(data))
				if err2 != nil {
					fatalf("%s: %v", path, err)
				}
				ads = []*classad.Ad{ad}
			}
			offers = append(offers, ads...)
		}
	}
	if len(offers) == 0 {
		fatalf("no machine ads to analyze against (use -pool or list ad files)")
	}
	fmt.Print(matchmaker.Analyze(job, offers, nil))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "canalyze: "+format+"\n", args...)
	os.Exit(2)
}
