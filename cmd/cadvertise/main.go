// Command cadvertise sends classified advertisements to a pool
// manager's collector — the advertising protocol (paper Figure 3,
// step 1) from the command line.
//
// Usage:
//
//	cadvertise -pool HOST:PORT [-lifetime SECONDS] [-debug-addr ADDR] FILE...
//	cadvertise -pool HOST:PORT -invalidate NAME
//
// Each FILE may contain one or more bracketed classads. With
// -debug-addr the tool serves /metrics while it runs and prints the
// netx transport counters (dials, retries, backoff) on exit — handy
// for seeing what a flaky collector cost.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/netx"
	"repro/internal/obs"
)

func main() {
	poolAddr := flag.String("pool", "127.0.0.1:9618", "collector address")
	lifetime := flag.Int64("lifetime", 0, "advertisement lifetime in seconds (0 = collector default)")
	invalidate := flag.String("invalidate", "", "withdraw the ad stored under this name")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and pprof on this address while running")
	flag.Parse()

	var o *obs.Obs
	if *debugAddr != "" {
		o = obs.New()
		netx.Instrument(o.Registry())
		ds, err := o.ServeDebug(*debugAddr)
		if err != nil {
			fatalf("debug endpoint: %v", err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "cadvertise: debug endpoint on http://%s\n", ds.Addr())
		defer func() {
			snap := o.Registry().Snapshot()
			fmt.Fprintf(os.Stderr, "cadvertise: transport: %d dial(s), %d retried, %d ms backoff\n",
				snap.Counters["netx_dials_total"], snap.Counters["netx_retries_total"],
				snap.Counters["netx_backoff_ms_total"])
		}()
	}

	client := &collector.Client{Addr: *poolAddr}
	if *invalidate != "" {
		if err := client.Invalidate(*invalidate); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("invalidated %q\n", *invalidate)
		return
	}
	if flag.NArg() == 0 {
		fatalf("no ad files given")
	}
	sent := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		ads, err := classad.ParseMulti(string(data))
		if err != nil {
			// A bare attribute list is a single ad.
			ad, err2 := classad.Parse(string(data))
			if err2 != nil {
				fatalf("%s: %v", path, err)
			}
			ads = []*classad.Ad{ad}
		}
		for _, ad := range ads {
			if err := client.Advertise(ad, *lifetime); err != nil {
				fatalf("%s: %v", path, err)
			}
			name, _ := ad.Eval(classad.AttrName).StringVal()
			fmt.Printf("advertised %q\n", name)
			sent++
		}
	}
	fmt.Printf("%d advertisement(s) sent to %s\n", sent, *poolAddr)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cadvertise: "+format+"\n", args...)
	os.Exit(2)
}
