// Command cadvertise sends classified advertisements to a pool
// manager's collector — the advertising protocol (paper Figure 3,
// step 1) from the command line.
//
// Usage:
//
//	cadvertise -pool HOST:PORT [-lifetime SECONDS] FILE...
//	cadvertise -pool HOST:PORT -invalidate NAME
//
// Each FILE may contain one or more bracketed classads.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/classad"
	"repro/internal/collector"
)

func main() {
	poolAddr := flag.String("pool", "127.0.0.1:9618", "collector address")
	lifetime := flag.Int64("lifetime", 0, "advertisement lifetime in seconds (0 = collector default)")
	invalidate := flag.String("invalidate", "", "withdraw the ad stored under this name")
	flag.Parse()

	client := &collector.Client{Addr: *poolAddr}
	if *invalidate != "" {
		if err := client.Invalidate(*invalidate); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("invalidated %q\n", *invalidate)
		return
	}
	if flag.NArg() == 0 {
		fatalf("no ad files given")
	}
	sent := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		ads, err := classad.ParseMulti(string(data))
		if err != nil {
			// A bare attribute list is a single ad.
			ad, err2 := classad.Parse(string(data))
			if err2 != nil {
				fatalf("%s: %v", path, err)
			}
			ads = []*classad.Ad{ad}
		}
		for _, ad := range ads {
			if err := client.Advertise(ad, *lifetime); err != nil {
				fatalf("%s: %v", path, err)
			}
			name, _ := ad.Eval(classad.AttrName).StringVal()
			fmt.Printf("advertised %q\n", name)
			sent++
		}
	}
	fmt.Printf("%d advertisement(s) sent to %s\n", sent, *poolAddr)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cadvertise: "+format+"\n", args...)
	os.Exit(2)
}
