// Command cadvertise sends classified advertisements to a pool
// manager's collector — the advertising protocol (paper Figure 3,
// step 1) from the command line.
//
// Usage:
//
//	cadvertise -pool HOST:PORT [-lifetime SECONDS] [-debug-addr ADDR] FILE...
//	cadvertise -pool HOST:PORT -refresh 60 FILE...
//	cadvertise -pool HOST:PORT -invalidate NAME
//
// Each FILE may contain one or more bracketed classads. With -refresh
// the tool keeps running and re-advertises the files every period the
// way a daemon heartbeat does — as UPDATE_DELTA envelopes carrying
// only the attributes that changed since the last refresh (an empty
// delta when nothing did), with automatic fallback to a full
// ADVERTISE on any sequence mismatch. With -debug-addr the tool
// serves /metrics while it runs and prints the netx transport
// counters (dials, retries, backoff) on exit — handy for seeing what
// a flaky collector cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/netx"
	"repro/internal/obs"
)

func main() {
	poolAddr := flag.String("pool", "127.0.0.1:9618", "collector address")
	lifetime := flag.Int64("lifetime", 0, "advertisement lifetime in seconds (0 = collector default)")
	refresh := flag.Int64("refresh", 0, "keep running and re-advertise every SECONDS as deltas (0 = advertise once and exit)")
	invalidate := flag.String("invalidate", "", "withdraw the ad stored under this name")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and pprof on this address while running")
	flag.Parse()

	var o *obs.Obs
	if *debugAddr != "" {
		o = obs.New()
		netx.Instrument(o.Registry())
		ds, err := o.ServeDebug(*debugAddr)
		if err != nil {
			fatalf("debug endpoint: %v", err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "cadvertise: debug endpoint on http://%s\n", ds.Addr())
		defer func() {
			snap := o.Registry().Snapshot()
			fmt.Fprintf(os.Stderr, "cadvertise: transport: %d dial(s), %d retried, %d ms backoff\n",
				snap.Counters["netx_dials_total"], snap.Counters["netx_retries_total"],
				snap.Counters["netx_backoff_ms_total"])
		}()
	}

	client := &collector.Client{Addr: *poolAddr}
	if *invalidate != "" {
		if err := client.Invalidate(*invalidate); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("invalidated %q\n", *invalidate)
		return
	}
	if flag.NArg() == 0 {
		fatalf("no ad files given")
	}
	if *refresh <= 0 {
		sent := 0
		for _, path := range flag.Args() {
			for _, ad := range loadAds(path) {
				if err := client.Advertise(ad, *lifetime); err != nil {
					fatalf("%s: %v", path, err)
				}
				name, _ := ad.Eval(classad.AttrName).StringVal()
				fmt.Printf("advertised %q\n", name)
				sent++
			}
		}
		fmt.Printf("%d advertisement(s) sent to %s\n", sent, *poolAddr)
		return
	}

	// Refresh mode: heartbeat the files as deltas until interrupted.
	// Files are re-read each period, so editing one between refreshes
	// ships exactly the changed attributes.
	da := collector.NewDeltaAdvertiser(client)
	beat := func() {
		for _, path := range flag.Args() {
			for _, ad := range loadAds(path) {
				name, _ := ad.Eval(classad.AttrName).StringVal()
				if err := da.Advertise(ad, *lifetime); err != nil {
					fmt.Fprintf(os.Stderr, "cadvertise: %s: %v\n", name, err)
				}
			}
		}
	}
	beat()
	fulls, deltas, _ := da.Stats()
	fmt.Printf("%d advertisement(s) established at %s, refreshing every %ds\n", fulls+deltas, *poolAddr, *refresh)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(time.Duration(*refresh) * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			beat()
		case <-stop:
			fulls, deltas, fallbacks := da.Stats()
			fmt.Printf("cadvertise: %d full ad(s), %d delta(s), %d fallback(s)\n", fulls, deltas, fallbacks)
			return
		}
	}
}

// loadAds parses one file into its classads (a bare attribute list is
// a single ad).
func loadAds(path string) []*classad.Ad {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	ads, err := classad.ParseMulti(string(data))
	if err != nil {
		ad, err2 := classad.Parse(string(data))
		if err2 != nil {
			fatalf("%s: %v", path, err)
		}
		ads = []*classad.Ad{ad}
	}
	return ads
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cadvertise: "+format+"\n", args...)
	os.Exit(2)
}
