// Command cagent runs one agent daemon: a Resource-owner Agent serving
// the claiming protocol for a machine described by a classad file, or
// a Customer Agent accepting job submissions and claiming matched
// resources.
//
// Usage:
//
//	cagent -resource machine.ad [-listen ADDR] [-pool ADDR] [-period S] [-challenge] [-debug-addr ADDR]
//	cagent -customer OWNER      [-listen ADDR] [-pool ADDR] [-period S] [-debug-addr ADDR]
//
// Both periodically advertise to the pool's collector (Figure 3
// step 1) and then react to the matchmaking and claiming protocols.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/netx"
	"repro/internal/obs"
	"repro/internal/pool"
)

func main() {
	resourceFile := flag.String("resource", "", "run a resource-owner agent for this machine ad file")
	customer := flag.String("customer", "", "run a customer agent for this owner")
	listen := flag.String("listen", "127.0.0.1:0", "agent listen address")
	poolAddr := flag.String("pool", "127.0.0.1:9618", "collector address")
	period := flag.Int64("period", 300, "advertising period in seconds")
	challenge := flag.Bool("challenge", false, "RA only: require HMAC challenge-response at claim time")
	flock := flag.String("flock", "", "CA only: comma-separated additional pool collectors to flock to")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /events and pprof on this address")
	flag.Parse()

	switch {
	case *resourceFile != "" && *customer != "":
		fatalf("-resource and -customer are mutually exclusive")
	case *resourceFile != "":
		runResource(*resourceFile, *listen, *poolAddr, *period, *challenge, *debugAddr)
	case *customer != "":
		runCustomer(*customer, *listen, *poolAddr, *period, *flock, *debugAddr)
	default:
		fatalf("one of -resource or -customer is required")
	}
}

// startDebug brings up the observability endpoint when requested; the
// returned Obs is nil (all hooks no-op) when debugAddr is empty.
func startDebug(debugAddr string) *obs.Obs {
	if debugAddr == "" {
		return nil
	}
	o := obs.New()
	netx.Instrument(o.Registry())
	ds, err := o.ServeDebug(debugAddr)
	if err != nil {
		fatalf("debug endpoint: %v", err)
	}
	log.Printf("cagent: debug endpoint on http://%s", ds.Addr())
	return o
}

func runResource(file, listen, poolAddr string, period int64, challenge bool, debugAddr string) {
	data, err := os.ReadFile(file)
	if err != nil {
		fatalf("%v", err)
	}
	base, err := classad.Parse(string(data))
	if err != nil {
		fatalf("%s: %v", file, err)
	}
	ra := agent.NewResource(base, nil)
	// Time-derived attributes (DayTime for the Figure 1 night
	// policy) track the clock rather than freezing at startup.
	ra.PublishClock()
	d := pool.NewResourceDaemon(ra, poolAddr, 3*period, log.Printf)
	d.RequireChallenge = challenge
	if o := startDebug(debugAddr); o != nil {
		d.Instrument(o)
	}
	contact, err := d.Listen(listen)
	if err != nil {
		fatalf("%v", err)
	}
	defer d.Close()
	log.Printf("cagent: RA %q serving claims on %s", ra.Name(), contact)
	loop(period, func() {
		if err := d.Advertise(); err != nil {
			log.Printf("cagent: advertise: %v", err)
		}
	}, func() {
		if err := d.Invalidate(); err != nil {
			log.Printf("cagent: invalidate: %v", err)
		}
	})
}

func runCustomer(owner, listen, poolAddr string, period int64, flock, debugAddr string) {
	ca := agent.NewCustomer(owner, nil)
	d := pool.NewCustomerDaemon(ca, poolAddr, 3*period, log.Printf)
	if o := startDebug(debugAddr); o != nil {
		d.Instrument(o)
	}
	if flock != "" {
		for _, target := range strings.Split(flock, ",") {
			if target = strings.TrimSpace(target); target != "" {
				d.AddFlockTarget(target)
				log.Printf("cagent: flocking to %s", target)
			}
		}
	}
	contact, err := d.Listen(listen)
	if err != nil {
		fatalf("%v", err)
	}
	defer d.Close()
	log.Printf("cagent: CA for %q accepting submissions on %s", owner, contact)
	loop(period, func() {
		if err := d.AdvertiseIdle(); err != nil {
			log.Printf("cagent: advertise: %v", err)
		}
		counts := ca.Counts()
		log.Printf("cagent: queue: %d idle, %d running, %d completed",
			counts[agent.JobIdle], counts[agent.JobRunning], counts[agent.JobCompleted])
	}, nil)
}

// loop runs tick immediately and then every period seconds until
// SIGINT, after which cleanup (if any) runs.
func loop(period int64, tick func(), cleanup func()) {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick()
	ticker := time.NewTicker(time.Duration(period) * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			tick()
		case <-stop:
			if cleanup != nil {
				cleanup()
			}
			return
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cagent: "+format+"\n", args...)
	os.Exit(2)
}
