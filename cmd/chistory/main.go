// Command chistory browses a pool manager's match-history log. Match
// records are classads (one per line, written by cpool -history), so
// the same one-way query language that browses machines browses the
// accounting log. With -ledger it instead reads a negotiator's durable
// fair-share ledger (cpool/cnegotiator -usage-dir): the replayed
// accounting table plus the journal's own statistics.
//
// Usage:
//
//	chistory [-constraint 'EXPR'] [-long] history.log
//	chistory -constraint 'other.Customer == "raman"' history.log
//	chistory -ledger /var/pool/usage
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/classad"
	"repro/internal/matchmaker"
)

func main() {
	constraint := flag.String("constraint", "true", "query constraint over other.*")
	long := flag.Bool("long", false, "print whole records")
	ledgerDir := flag.String("ledger", "", "read a durable usage ledger from this directory instead of a history file")
	flag.Parse()
	if *ledgerDir != "" {
		showLedger(*ledgerDir)
		return
	}
	if flag.NArg() != 1 {
		fatalf("exactly one history file expected")
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	records, err := classad.ParseMulti(string(data))
	if err != nil {
		fatalf("%s: %v", flag.Arg(0), err)
	}
	query := classad.NewAd()
	if err := query.SetExprString(classad.AttrConstraint, *constraint); err != nil {
		fatalf("bad constraint: %v", err)
	}
	matched := 0
	if !*long {
		fmt.Printf("%-12s %-6s %-10s %-24s %-28s %10s %10s\n",
			"TIME", "CYCLE", "CUSTOMER", "REQUEST", "OFFER", "REQ-RANK", "OFF-RANK")
	}
	for _, rec := range records {
		if !classad.MatchesQuery(query, rec, nil) {
			continue
		}
		matched++
		if *long {
			fmt.Println(rec.Pretty())
			fmt.Println()
			continue
		}
		t, _ := rec.Eval("Time").IntVal()
		cyc, _ := rec.Eval("Cycle").IntVal()
		fmt.Printf("%-12d %-6d %-10s %-24s %-28s %10.2f %10.2f\n",
			t, cyc, str(rec, "Customer"), str(rec, "RequestName"),
			str(rec, "OfferName"),
			rec.Eval("RequestRank").RankVal(), rec.Eval("OfferRank").RankVal())
	}
	fmt.Printf("%d of %d record(s)\n", matched, len(records))
}

// showLedger replays a durable usage ledger and prints the fair-share
// table it reconstructs, with the journal's shape (generation, records
// since the last snapshot) so an operator can see compaction working.
func showLedger(dir string) {
	ledger, err := matchmaker.OpenUsageLedger(dir, nil)
	if err != nil {
		fatalf("%v", err)
	}
	defer ledger.Close()
	table := ledger.Table()
	customers := table.Customers()
	fmt.Printf("%-20s %12s\n", "CUSTOMER", "USAGE")
	for _, c := range customers {
		fmt.Printf("%-20s %12.4f\n", c, table.Effective(c))
	}
	stats := ledger.Stats()
	fmt.Printf("%d customer(s); journal gen %d, %d record(s) replayed, %d since last snapshot\n",
		len(customers), stats.Gen, stats.RecoveredRecords, stats.SinceSnapshot)
}

func str(ad *classad.Ad, attr string) string {
	if s, ok := ad.Eval(attr).StringVal(); ok {
		return s
	}
	return "-"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chistory: "+format+"\n", args...)
	os.Exit(2)
}
