// Command cstatus browses a pool through one-way queries (paper §4:
// "there are tools to check on the status of job queues and browse
// existing resources").
//
// Usage:
//
//	cstatus -pool HOST:PORT [-constraint 'EXPR'] [-long] [-type Machine]
//
// The constraint is evaluated with `other` bound to each stored ad;
// ads for which it is true are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/classad"
	"repro/internal/collector"
)

func main() {
	poolAddr := flag.String("pool", "127.0.0.1:9618", "collector address")
	constraint := flag.String("constraint", "true", "query constraint over other.*")
	typeFilter := flag.String("type", "", "restrict to ads of this Type")
	long := flag.Bool("long", false, "print whole ads instead of a summary table")
	attrs := flag.String("attrs", "", "comma-separated projection: fetch only these attributes")
	flag.Parse()

	src := *constraint
	if *typeFilter != "" {
		src = fmt.Sprintf("(%s) && other.Type == %q", src, *typeFilter)
	}
	query := classad.NewAd()
	if err := query.SetExprString(classad.AttrConstraint, src); err != nil {
		fatalf("bad constraint: %v", err)
	}
	client := &collector.Client{Addr: *poolAddr}
	var projection []string
	if *attrs != "" {
		for _, a := range strings.Split(*attrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				projection = append(projection, a)
			}
		}
	}
	ads, err := client.QueryProject(query, projection)
	if err != nil {
		fatalf("%v", err)
	}
	if len(projection) > 0 {
		// Projected output: print the requested attributes as-is.
		for _, ad := range ads {
			fmt.Println(ad)
		}
		fmt.Printf("%d ad(s)\n", len(ads))
		return
	}
	if *long {
		for _, ad := range ads {
			fmt.Println(ad.Pretty())
			fmt.Println()
		}
		fmt.Printf("%d ad(s)\n", len(ads))
		return
	}
	fmt.Printf("%-28s %-8s %-12s %-10s %6s %8s\n",
		"NAME", "TYPE", "STATE", "ARCH", "MEMORY", "MIPS")
	type archState struct{ arch, state string }
	totals := make(map[archState]int)
	for _, ad := range ads {
		fmt.Printf("%-28s %-8s %-12s %-10s %6s %8s\n",
			str(ad, "Name"), str(ad, "Type"), str(ad, "State"),
			str(ad, "Arch"), num(ad, "Memory"), num(ad, "Mips"))
		totals[archState{str(ad, "Arch"), str(ad, "State")}]++
	}
	fmt.Printf("%d ad(s)\n", len(ads))
	if len(totals) > 1 {
		fmt.Println("\nTotals by architecture and state:")
		keys := make([]archState, 0, len(totals))
		for k := range totals {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].arch != keys[j].arch {
				return keys[i].arch < keys[j].arch
			}
			return keys[i].state < keys[j].state
		})
		for _, k := range keys {
			fmt.Printf("  %-10s %-12s %5d\n", k.arch, k.state, totals[k])
		}
	}
}

func str(ad *classad.Ad, attr string) string {
	if s, ok := ad.Eval(attr).StringVal(); ok {
		return s
	}
	return "-"
}

func num(ad *classad.Ad, attr string) string {
	v := ad.Eval(attr)
	if n, ok := v.NumberVal(); ok {
		return fmt.Sprintf("%g", n)
	}
	return "-"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cstatus: "+format+"\n", args...)
	os.Exit(2)
}
