// Command cstatus browses a pool through one-way queries (paper §4:
// "there are tools to check on the status of job queues and browse
// existing resources").
//
// Usage:
//
//	cstatus -pool HOST:PORT [-constraint 'EXPR'] [-long] [-type Machine]
//	cstatus -debug-addr HOST:PORT -metrics
//	cstatus -debug-addr HOST:PORT -trace CYCLE-ID
//
// The constraint is evaluated with `other` bound to each stored ad;
// ads for which it is true are printed. The -metrics and -trace modes
// talk to a daemon's observability endpoint (its -debug-addr) instead
// of the collector: -metrics dumps the metric registry, -trace replays
// every event stamped with one negotiation-cycle ID — the manager's
// cycle, the matchmaker's decisions, the CA's claim and the RA's
// verdict, in order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/obs"
)

func main() {
	poolAddr := flag.String("pool", "127.0.0.1:9618", "collector address")
	constraint := flag.String("constraint", "true", "query constraint over other.*")
	typeFilter := flag.String("type", "", "restrict to ads of this Type")
	long := flag.Bool("long", false, "print whole ads instead of a summary table")
	attrs := flag.String("attrs", "", "comma-separated projection: fetch only these attributes")
	debugAddr := flag.String("debug-addr", "", "daemon observability endpoint for -metrics / -trace")
	metrics := flag.Bool("metrics", false, "print the daemon's metric registry")
	trace := flag.String("trace", "", "replay the events of this negotiation-cycle ID")
	ha := flag.Bool("ha", false, "show negotiator leadership: leader, epoch, lease deadline (add -debug-addr for durability metrics)")
	flag.Parse()

	if *ha {
		showHA(*poolAddr, *debugAddr)
		return
	}

	if *metrics || *trace != "" {
		if *debugAddr == "" {
			fatalf("-metrics and -trace need -debug-addr (the daemon's debug endpoint)")
		}
		if *metrics {
			showMetrics(*debugAddr)
		}
		if *trace != "" {
			showTrace(*debugAddr, *trace)
		}
		return
	}

	src := *constraint
	if *typeFilter != "" {
		src = fmt.Sprintf("(%s) && other.Type == %q", src, *typeFilter)
	}
	query := classad.NewAd()
	if err := query.SetExprString(classad.AttrConstraint, src); err != nil {
		fatalf("bad constraint: %v", err)
	}
	client := &collector.Client{Addr: *poolAddr}
	var projection []string
	if *attrs != "" {
		for _, a := range strings.Split(*attrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				projection = append(projection, a)
			}
		}
	}
	ads, err := client.QueryProject(query, projection)
	if err != nil {
		fatalf("%v", err)
	}
	if len(projection) > 0 {
		// Projected output: print the requested attributes as-is.
		for _, ad := range ads {
			fmt.Println(ad)
		}
		fmt.Printf("%d ad(s)\n", len(ads))
		return
	}
	if *long {
		for _, ad := range ads {
			fmt.Println(ad.Pretty())
			fmt.Println()
		}
		fmt.Printf("%d ad(s)\n", len(ads))
		return
	}
	fmt.Printf("%-28s %-8s %-12s %-10s %6s %8s\n",
		"NAME", "TYPE", "STATE", "ARCH", "MEMORY", "MIPS")
	type archState struct{ arch, state string }
	totals := make(map[archState]int)
	for _, ad := range ads {
		fmt.Printf("%-28s %-8s %-12s %-10s %6s %8s\n",
			str(ad, "Name"), str(ad, "Type"), str(ad, "State"),
			str(ad, "Arch"), num(ad, "Memory"), num(ad, "Mips"))
		totals[archState{str(ad, "Arch"), str(ad, "State")}]++
	}
	fmt.Printf("%d ad(s)\n", len(ads))
	if len(totals) > 1 {
		fmt.Println("\nTotals by architecture and state:")
		keys := make([]archState, 0, len(totals))
		for k := range totals {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].arch != keys[j].arch {
				return keys[i].arch < keys[j].arch
			}
			return keys[i].state < keys[j].state
		})
		for _, k := range keys {
			fmt.Printf("  %-10s %-12s %5d\n", k.arch, k.state, totals[k])
		}
	}
}

// showHA queries the collector for negotiator ads — the negotiators
// advertise themselves like any other entity (paper §4) — and prints
// the pool's leadership picture: who leads, under which epoch, until
// when. With a debug endpoint it appends the durability counters
// (store_* WAL and snapshot activity, negotiator_failovers_total).
func showHA(poolAddr, debugAddr string) {
	query := classad.NewAd()
	if err := query.SetExprString(classad.AttrConstraint, `other.Type == "Negotiator"`); err != nil {
		fatalf("%v", err)
	}
	client := &collector.Client{Addr: poolAddr}
	ads, err := client.Query(query)
	if err != nil {
		fatalf("%v", err)
	}
	if len(ads) == 0 {
		fmt.Println("no negotiator has advertised yet")
	} else {
		fmt.Printf("%-24s %-12s %6s %14s %7s %8s\n",
			"NEGOTIATOR", "LEADER", "EPOCH", "LEASE-DEADLINE", "CYCLE", "MATCHES")
		for _, ad := range ads {
			deadline := "-"
			if d, ok := ad.Eval("LeaseDeadline").IntVal(); ok && d > 0 {
				deadline = time.Unix(d, 0).Format("15:04:05")
			}
			fmt.Printf("%-24s %-12s %6s %14s %7s %8s\n",
				str(ad, "Name"), str(ad, "Leader"), num(ad, "Epoch"),
				deadline, num(ad, "Cycle"), num(ad, "LastMatches"))
		}
	}
	if debugAddr == "" {
		return
	}
	var snap obs.Snapshot
	fetchJSON(debugAddr, "/metrics", &snap)
	fmt.Println("\nDurability:")
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		if strings.HasPrefix(name, "store_") || strings.HasPrefix(name, "negotiator_") ||
			name == "pool_fenced_matches_total" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-42s %12d\n", name, snap.Counters[name])
	}
	for name, v := range snap.Gauges {
		if name == "negotiator_leader_epoch" {
			fmt.Printf("  %-42s %12g\n", name, v)
		}
	}
	if h, ok := snap.Histograms["store_fsync_seconds"]; ok && h.Count > 0 {
		fmt.Printf("  %-42s %12d  mean=%.6gs\n", "store_fsync_seconds", h.Count, h.Sum/float64(h.Count))
	}
}

// fetchJSON GETs one debug-endpoint path and decodes the reply.
func fetchJSON(addr, path string, out any) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get("http://" + addr + path)
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("%s: %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		fatalf("%s: %v", path, err)
	}
}

// showMetrics prints a daemon's whole metric registry: counters and
// gauges as a sorted table, histograms with count, sum and mean.
func showMetrics(addr string) {
	var snap obs.Snapshot
	fetchJSON(addr, "/metrics", &snap)
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-44s %12d\n", name, snap.Counters[name])
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-44s %12g\n", name, snap.Gauges[name])
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		mean := "-"
		if h.Count > 0 {
			mean = fmt.Sprintf("%.6g", h.Sum/float64(h.Count))
		}
		fmt.Printf("%-44s %12d  sum=%.6g mean=%s\n", name, h.Count, h.Sum, mean)
	}
}

// showTrace replays one negotiation cycle's events in order: the
// manager opening the cycle, the matchmaker's matches and rejections,
// the CA's claim attempt and the RA's verdict.
func showTrace(addr, cycle string) {
	var events []obs.Event
	fetchJSON(addr, "/events?cycle="+url.QueryEscape(cycle), &events)
	if len(events) == 0 {
		fmt.Printf("no events for cycle %s\n", cycle)
		return
	}
	fmt.Printf("cycle %s: %d event(s)\n", cycle, len(events))
	for _, ev := range events {
		fields := make([]string, 0, len(ev.Fields))
		for k := range ev.Fields {
			fields = append(fields, k)
		}
		sort.Strings(fields)
		var b strings.Builder
		for _, k := range fields {
			fmt.Fprintf(&b, " %s=%s", k, ev.Fields[k])
		}
		fmt.Printf("%s  %-10s %-16s%s\n",
			ev.Time.Format("15:04:05.000"), ev.Src, ev.Type, b.String())
	}
}

func str(ad *classad.Ad, attr string) string {
	if s, ok := ad.Eval(attr).StringVal(); ok {
		return s
	}
	return "-"
}

func num(ad *classad.Ad, attr string) string {
	v := ad.Eval(attr)
	if n, ok := v.NumberVal(); ok {
		return fmt.Sprintf("%g", n)
	}
	return "-"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cstatus: "+format+"\n", args...)
	os.Exit(2)
}
