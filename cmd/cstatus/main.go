// Command cstatus browses a pool through one-way queries (paper §4:
// "there are tools to check on the status of job queues and browse
// existing resources").
//
// Usage:
//
//	cstatus -pool HOST:PORT [-constraint 'EXPR'] [-long] [-type Machine]
//	cstatus -debug-addr HOST:PORT -metrics
//	cstatus -debug-addr HOST:PORT -trace TRACE-OR-CYCLE-ID
//	cstatus -debug-addr HOST:PORT -why OWNER/jobN
//
// The constraint is evaluated with `other` bound to each stored ad;
// ads for which it is true are printed. The -metrics, -trace and -why
// modes talk to a daemon's observability endpoint (its -debug-addr)
// instead of the collector: -metrics dumps the metric registry with
// latency quantiles, -trace renders the span tree of one causal trace
// (the ID csubmit printed) with per-hop latencies — submission,
// collector storage, negotiation, claim, verdict — falling back to the
// event replay when the ID names a negotiation cycle, and -why prints
// the matchmaker's rejection ledger for an unmatched request: per
// offer, which constraint conjunct failed, who outranked it, or which
// posting list pruned it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/obs"
)

func main() {
	poolAddr := flag.String("pool", "127.0.0.1:9618", "collector address")
	constraint := flag.String("constraint", "true", "query constraint over other.*")
	typeFilter := flag.String("type", "", "restrict to ads of this Type")
	long := flag.Bool("long", false, "print whole ads instead of a summary table")
	attrs := flag.String("attrs", "", "comma-separated projection: fetch only these attributes")
	debugAddr := flag.String("debug-addr", "", "daemon observability endpoint for -metrics / -trace")
	metrics := flag.Bool("metrics", false, "print the daemon's metric registry")
	trace := flag.String("trace", "", "render the span tree of this trace ID (or replay a cycle ID's events)")
	why := flag.String("why", "", "explain why this request went unmatched (rejection ledger)")
	ha := flag.Bool("ha", false, "show negotiator leadership: leader, epoch, lease deadline (add -debug-addr for daemon health and durability metrics)")
	flag.Parse()

	if *ha {
		showHA(*poolAddr, *debugAddr)
		return
	}

	if *metrics || *trace != "" || *why != "" {
		if *debugAddr == "" {
			fatalf("-metrics, -trace and -why need -debug-addr (the daemon's debug endpoint)")
		}
		if *metrics {
			showMetrics(*debugAddr)
		}
		if *trace != "" {
			showTrace(*debugAddr, *trace)
		}
		if *why != "" {
			showWhy(*debugAddr, *why)
		}
		return
	}

	src := *constraint
	if *typeFilter != "" {
		src = fmt.Sprintf("(%s) && other.Type == %q", src, *typeFilter)
	}
	query := classad.NewAd()
	if err := query.SetExprString(classad.AttrConstraint, src); err != nil {
		fatalf("bad constraint: %v", err)
	}
	client := &collector.Client{Addr: *poolAddr}
	var projection []string
	if *attrs != "" {
		for _, a := range strings.Split(*attrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				projection = append(projection, a)
			}
		}
	}
	ads, err := client.QueryProject(query, projection)
	if err != nil {
		fatalf("%v", err)
	}
	if len(projection) > 0 {
		// Projected output: print the requested attributes as-is.
		for _, ad := range ads {
			fmt.Println(ad)
		}
		fmt.Printf("%d ad(s)\n", len(ads))
		return
	}
	if *long {
		for _, ad := range ads {
			fmt.Println(ad.Pretty())
			fmt.Println()
		}
		fmt.Printf("%d ad(s)\n", len(ads))
		return
	}
	fmt.Printf("%-28s %-8s %-12s %-10s %6s %8s\n",
		"NAME", "TYPE", "STATE", "ARCH", "MEMORY", "MIPS")
	type archState struct{ arch, state string }
	totals := make(map[archState]int)
	for _, ad := range ads {
		fmt.Printf("%-28s %-8s %-12s %-10s %6s %8s\n",
			str(ad, "Name"), str(ad, "Type"), str(ad, "State"),
			str(ad, "Arch"), num(ad, "Memory"), num(ad, "Mips"))
		totals[archState{str(ad, "Arch"), str(ad, "State")}]++
	}
	fmt.Printf("%d ad(s)\n", len(ads))
	if len(totals) > 1 {
		fmt.Println("\nTotals by architecture and state:")
		keys := make([]archState, 0, len(totals))
		for k := range totals {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].arch != keys[j].arch {
				return keys[i].arch < keys[j].arch
			}
			return keys[i].state < keys[j].state
		})
		for _, k := range keys {
			fmt.Printf("  %-10s %-12s %5d\n", k.arch, k.state, totals[k])
		}
	}
}

// showHA queries the collector for negotiator ads — the negotiators
// advertise themselves like any other entity (paper §4) — and prints
// the pool's leadership picture: who leads, under which epoch, until
// when. With a debug endpoint it appends the durability counters
// (store_* WAL and snapshot activity, negotiator_failovers_total).
func showHA(poolAddr, debugAddr string) {
	query := classad.NewAd()
	if err := query.SetExprString(classad.AttrConstraint, `other.Type == "Negotiator"`); err != nil {
		fatalf("%v", err)
	}
	client := &collector.Client{Addr: poolAddr}
	ads, err := client.Query(query)
	if err != nil {
		fatalf("%v", err)
	}
	if len(ads) == 0 {
		fmt.Println("no negotiator has advertised yet")
	} else {
		fmt.Printf("%-24s %-12s %6s %14s %7s %8s\n",
			"NEGOTIATOR", "LEADER", "EPOCH", "LEASE-DEADLINE", "CYCLE", "MATCHES")
		for _, ad := range ads {
			deadline := "-"
			if d, ok := ad.Eval("LeaseDeadline").IntVal(); ok && d > 0 {
				deadline = time.Unix(d, 0).Format("15:04:05")
			}
			fmt.Printf("%-24s %-12s %6s %14s %7s %8s\n",
				str(ad, "Name"), str(ad, "Leader"), num(ad, "Epoch"),
				deadline, num(ad, "Cycle"), num(ad, "LastMatches"))
		}
	}
	if debugAddr == "" {
		return
	}
	// Daemon health via absent-ad detection: every daemon advertises a
	// Daemon-type classad of its own vital signs; one that stops
	// re-advertising turns "missing" here instead of silently vanishing.
	var daemons []collector.DaemonStatus
	if err := tryJSON(debugAddr, "/daemons", &daemons); err == nil && len(daemons) > 0 {
		fmt.Println("\nDaemon health (self-ads):")
		fmt.Printf("  %-32s %-12s %-8s %s\n", "DAEMON", "KIND", "STATUS", "OVERDUE")
		for _, d := range daemons {
			overdue := "-"
			if d.Status != "ok" {
				overdue = fmt.Sprintf("%ds", d.OverdueSeconds)
			}
			fmt.Printf("  %-32s %-12s %-8s %s\n", d.Name, d.Kind, d.Status, overdue)
		}
	}
	var snap obs.Snapshot
	fetchJSON(debugAddr, "/metrics", &snap)
	fmt.Println("\nDurability:")
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		if strings.HasPrefix(name, "store_") || strings.HasPrefix(name, "negotiator_") ||
			name == "pool_fenced_matches_total" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-42s %12d\n", name, snap.Counters[name])
	}
	for name, v := range snap.Gauges {
		if name == "negotiator_leader_epoch" {
			fmt.Printf("  %-42s %12g\n", name, v)
		}
	}
	if h, ok := snap.Histograms["store_fsync_seconds"]; ok && h.Count > 0 {
		fmt.Printf("  %-42s %12d  mean=%.6gs\n", "store_fsync_seconds", h.Count, h.Sum/float64(h.Count))
	}
}

// fetchJSON GETs one debug-endpoint path and decodes the reply.
func fetchJSON(addr, path string, out any) {
	if err := tryJSON(addr, path, out); err != nil {
		fatalf("%v", err)
	}
}

// tryJSON is fetchJSON returning errors instead of exiting, for paths
// that are allowed to be absent (an older daemon without the handler).
func tryJSON(addr, path string, out any) error {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	return nil
}

// showMetrics prints a daemon's whole metric registry: counters and
// gauges as a sorted table, histograms with count, sum and mean.
func showMetrics(addr string) {
	var snap obs.Snapshot
	fetchJSON(addr, "/metrics", &snap)
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-44s %12d\n", name, snap.Counters[name])
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-44s %12g\n", name, snap.Gauges[name])
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		if h.Count == 0 {
			fmt.Printf("%-44s %12d\n", name, h.Count)
			continue
		}
		fmt.Printf("%-44s %12d  mean=%.6g p50=%.6g p95=%.6g p99=%.6g\n",
			name, h.Count, h.Sum/float64(h.Count), h.P50, h.P95, h.P99)
	}
}

// showTrace renders one causal trace as a span tree — the submission
// at the root, each later hop (collector storage, negotiation, claim,
// verdict) indented under its parent with its duration and its latency
// relative to the trace root. IDs that name a negotiation cycle
// instead of a trace fall back to the event replay.
func showTrace(addr, id string) {
	var spans []obs.Span
	if err := tryJSON(addr, "/trace?id="+url.QueryEscape(id), &spans); err == nil && len(spans) > 0 {
		showSpanTree(id, spans)
		return
	}
	showCycleEvents(addr, id)
}

// showSpanTree prints the spans of one trace as an indented tree,
// children ordered by start time. A span whose parent never reached
// this daemon's ring (dropped, or recorded elsewhere) roots its own
// subtree rather than vanishing.
func showSpanTree(id string, spans []obs.Span) {
	fmt.Printf("trace %s: %d span(s)\n", id, len(spans))
	byID := make(map[string]obs.Span, len(spans))
	children := make(map[string][]obs.Span)
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	var roots []obs.Span
	for _, sp := range spans {
		if sp.Parent == "" || byID[sp.Parent].ID == "" {
			roots = append(roots, sp)
			continue
		}
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	var origin time.Time
	if len(roots) > 0 {
		origin = roots[0].Start
	}
	var render func(sp obs.Span, depth int)
	render = func(sp obs.Span, depth int) {
		status := ""
		if sp.Err != "" {
			status = "  ERROR: " + sp.Err
		}
		var fields []string
		for k := range sp.Fields {
			fields = append(fields, k)
		}
		sort.Strings(fields)
		var b strings.Builder
		for _, k := range fields {
			fmt.Fprintf(&b, " %s=%s", k, sp.Fields[k])
		}
		fmt.Printf("%s%-12s %-14s +%-9s %8s%s%s\n",
			strings.Repeat("  ", depth), sp.Src, sp.Name,
			sp.Start.Sub(origin).Round(time.Microsecond),
			sp.End.Sub(sp.Start).Round(time.Microsecond), b.String(), status)
		kids := children[sp.ID]
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
		for _, kid := range kids {
			render(kid, depth+1)
		}
	}
	for _, root := range roots {
		render(root, 0)
	}
}

// showCycleEvents replays one negotiation cycle's events in order: the
// manager opening the cycle, the matchmaker's matches and rejections,
// the CA's claim attempt and the RA's verdict.
func showCycleEvents(addr, cycle string) {
	var events []obs.Event
	fetchJSON(addr, "/events?cycle="+url.QueryEscape(cycle), &events)
	if len(events) == 0 {
		fmt.Printf("no spans or events for %s\n", cycle)
		return
	}
	fmt.Printf("cycle %s: %d event(s)\n", cycle, len(events))
	for _, ev := range events {
		fields := make([]string, 0, len(ev.Fields))
		for k := range ev.Fields {
			fields = append(fields, k)
		}
		sort.Strings(fields)
		var b strings.Builder
		for _, k := range fields {
			fmt.Fprintf(&b, " %s=%s", k, ev.Fields[k])
		}
		fmt.Printf("%s  %-10s %-16s%s\n",
			ev.Time.Format("15:04:05.000"), ev.Src, ev.Type, b.String())
	}
}

// showWhy prints the matchmaker's forensics for one request: matched
// (to whom, claimed or not) or the per-offer rejection ledger — which
// constraint conjunct failed, who outranked it, which posting list
// pruned it before the scan.
func showWhy(addr, request string) {
	var report matchmaker.Report
	if err := tryJSON(addr, "/why?request="+url.QueryEscape(request), &report); err != nil {
		var index struct {
			Requests []string `json:"requests"`
		}
		if lerr := tryJSON(addr, "/why", &index); lerr == nil && len(index.Requests) > 0 {
			fmt.Fprintf(os.Stderr, "cstatus: %v\nrequests with forensics: %s\n",
				err, strings.Join(index.Requests, ", "))
			os.Exit(2)
		}
		fatalf("%v", err)
	}
	when := report.Time.Format("15:04:05.000")
	if report.Matched {
		claimed := ""
		if report.Claimed {
			claimed = " (offer was already claimed; claim-time revalidation decides)"
		}
		fmt.Printf("request %s: matched to %s in cycle %s at %s%s\n",
			report.Request, report.Offer, report.Cycle, when, claimed)
	} else {
		fmt.Printf("request %s: unmatched in cycle %s at %s: %s\n",
			report.Request, report.Cycle, when, report.Reason)
	}
	if len(report.Ledger) > 0 {
		fmt.Println("per-offer verdicts:")
		for _, v := range report.Ledger {
			detail := ""
			if v.Detail != "" {
				detail = "  " + v.Detail
			}
			fmt.Printf("  %-28s %-18s%s\n", v.Offer, v.Outcome, detail)
		}
	}
	if report.Truncated {
		fmt.Println("(ledger truncated: more offers were examined than recorded)")
	}
}

func str(ad *classad.Ad, attr string) string {
	if s, ok := ad.Eval(attr).StringVal(); ok {
		return s
	}
	return "-"
}

func num(ad *classad.Ad, attr string) string {
	v := ad.Eval(attr)
	if n, ok := v.NumberVal(); ok {
		return fmt.Sprintf("%g", n)
	}
	return "-"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cstatus: "+format+"\n", args...)
	os.Exit(2)
}
