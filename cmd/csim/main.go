// Command csim regenerates the repository's pool-scale experiments
// (EXPERIMENTS.md): the matchmaker-versus-queues comparison (E7), the
// opportunistic-scheduling study (E8), the weak-consistency staleness
// sweep (E5), the negotiation-cycle scalability sweep (E10), and the
// ad-aggregation ablation (E11). Each prints one table.
//
// Usage:
//
//	csim -experiment e5|e7|e8|e10|e11|all [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/classad"
	"repro/internal/matchmaker"
	"repro/internal/sim"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run: e5, e7, e8, e10, e11, e15, all")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()
	switch *exp {
	case "e5":
		runE5(*seed)
	case "e7":
		runE7(*seed)
	case "e8":
		runE8(*seed)
	case "e10":
		runE10(*seed)
	case "e11":
		runE11(*seed)
	case "e15":
		runE15(*seed)
	case "all":
		runE5(*seed)
		runE7(*seed)
		runE8(*seed)
		runE10(*seed)
		runE11(*seed)
		runE15(*seed)
	default:
		fmt.Fprintf(os.Stderr, "csim: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// runSim executes one simulation, optionally with a non-default
// scheduler factory.
func runSim(cfg sim.Config, sched func(env *classad.Env) sim.Scheduler) sim.Metrics {
	s := sim.New(cfg)
	if sched != nil {
		cfg.Scheduler = sched(s.Env())
		s = sim.New(cfg)
	}
	return s.Run()
}

// runE5 sweeps advertisement staleness: longer refresh periods mean
// more claims land on machines whose state changed, all caught by
// claim-time re-validation (paper §3.2, weak consistency).
func runE5(seed int64) {
	fmt.Println("E5: weak consistency — stale ads are caught at claim time")
	fmt.Println("  pool: 20 flapping desktops; workload: 100 x 20-min jobs; 1 simulated day")
	fmt.Printf("  %-18s %12s %10s %10s %10s\n",
		"advertise-period", "stale-rejects", "completed", "evictions", "goodput")
	for _, period := range []int64{300, 900, 1800, 3600} {
		m := runSim(sim.Config{
			Pool: sim.PoolSpec{Machines: 20, DesktopFraction: 1,
				MeanOwnerActive: 900, MeanOwnerIdle: 1800, Classes: 1},
			Workload:        sim.JobSpec{Jobs: 100, MeanRuntime: 1200},
			Seed:            seed,
			Duration:        86400,
			AdvertisePeriod: period,
		}, nil)
		fmt.Printf("  %-18d %12d %10d %10d %10.0f\n",
			period, m.StaleRejects, m.Completed, m.Evictions, m.Goodput())
	}
	fmt.Println()
}

// runE7 compares the matchmaker against the conventional queue
// scheduler across desktop fractions: the matchmaker's margin is the
// harvestable desktop capacity, vanishing on a fully dedicated pool.
func runE7(seed int64) {
	fmt.Println("E7: matchmaking vs conventional queues (goodput in cpu-s/day)")
	fmt.Println("  pool: 30 machines; workload: 400 x 1-h jobs; 1 simulated day")
	fmt.Printf("  %-16s %14s %14s %10s %14s\n",
		"desktop-frac", "matchmaker", "queues", "ratio", "queue-evicts")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := sim.Config{
			Pool: sim.PoolSpec{Machines: 30, DesktopFraction: frac,
				MeanOwnerActive: 3600, MeanOwnerIdle: 7200, Classes: 1},
			Workload: sim.JobSpec{Jobs: 400, MeanRuntime: 3600,
				Users: []string{"u1", "u2", "u3"}},
			Seed:     seed,
			Duration: 86400,
		}
		mm := runSim(cfg, nil)
		qs := runSim(cfg, func(env *classad.Env) sim.Scheduler { return baseline.New(env) })
		ratio := 0.0
		if qs.Goodput() > 0 {
			ratio = mm.Goodput() / qs.Goodput()
		}
		fmt.Printf("  %-16.2f %14.0f %14.0f %10.2f %14d\n",
			frac, mm.Goodput(), qs.Goodput(), ratio, qs.Evictions)
	}
	fmt.Println()
}

// runE8 studies opportunistic scheduling on an all-desktop pool:
// cycles harvested, evictions suffered, and the effect of
// checkpointing on wasted work (Figure 2's WantCheckpoint).
func runE8(seed int64) {
	fmt.Println("E8: opportunistic scheduling on owner-occupied desktops")
	fmt.Println("  pool: 40 desktops; workload: 300 x 1-h jobs; 2 simulated days")
	fmt.Printf("  %-14s %10s %10s %12s %12s %8s\n",
		"checkpointing", "completed", "evictions", "wasted", "goodput", "util%")
	for _, ckpt := range []bool{false, true} {
		m := runSim(sim.Config{
			Pool: sim.PoolSpec{Machines: 40, DesktopFraction: 1,
				MeanOwnerActive: 3600, MeanOwnerIdle: 5400, Classes: 1},
			Workload: sim.JobSpec{Jobs: 300, MeanRuntime: 3600,
				Users: []string{"u1", "u2", "u3"}, Checkpoint: ckpt},
			Seed:     seed,
			Duration: 2 * 86400,
		}, nil)
		fmt.Printf("  %-14v %10d %10d %12.0f %12.0f %8.1f\n",
			ckpt, m.Completed, m.Evictions, m.WastedWork, m.Goodput(),
			100*m.Utilization())
	}
	// Diurnal variant: owners mostly present by day, away at night —
	// the harvest concentrates in the off-hours.
	md := runSim(sim.Config{
		Pool: sim.PoolSpec{Machines: 40, DesktopFraction: 1,
			MeanOwnerActive: 3600, MeanOwnerIdle: 5400,
			Diurnal: true, Classes: 1},
		Workload: sim.JobSpec{Jobs: 300, MeanRuntime: 3600,
			Users: []string{"u1", "u2", "u3"}},
		Seed:     seed,
		Duration: 2 * 86400,
	}, nil)
	var day, night int
	for h, n := range md.ClaimsByHour {
		if h >= 8 && h < 18 {
			day += n
		} else {
			night += n
		}
	}
	fmt.Printf("  diurnal owners: claims/hour day=%.1f night=%.1f (harvest follows the owners home)\n",
		float64(day)/10, float64(night)/14)
	fmt.Println()
}

// runE10 measures negotiation-cycle latency against pool size — the
// scalability of the matchmaking algorithm itself, no simulation.
func runE10(seed int64) {
	fmt.Println("E10: negotiation cycle latency vs pool size (wall clock)")
	fmt.Printf("  %-10s %-10s %14s %14s %10s\n",
		"machines", "jobs", "rank-sorted", "first-fit", "matches")
	for _, n := range []int{10, 100, 1000, 5000} {
		machines := syntheticMachines(n, seed)
		jobs := syntheticJobs(n/2, seed)
		rankTime, matches := timeCycle(matchmaker.Config{}, jobs, machines)
		ffTime, _ := timeCycle(matchmaker.Config{FirstFit: true}, jobs, machines)
		fmt.Printf("  %-10d %-10d %14s %14s %10d\n",
			n, n/2, rankTime, ffTime, matches)
	}
	fmt.Println()
}

// runE11 measures the aggregation speedup against pool regularity:
// the fewer distinct machine classes, the larger the win.
func runE11(seed int64) {
	fmt.Println("E11: ad aggregation (group matching) vs pool regularity")
	const n = 2000
	fmt.Printf("  pool: %d machines; 200 jobs\n", n)
	fmt.Printf("  %-10s %14s %14s %10s\n", "classes", "linear", "aggregated", "speedup")
	for _, classes := range []int{1, 4, 16, 64, 256} {
		machines := regularMachines(n, classes, seed)
		jobs := syntheticJobs(200, seed)
		linTime, linMatches := timeCycle(matchmaker.Config{}, jobs, machines)
		aggTime, aggMatches := timeCycle(matchmaker.Config{Aggregate: true}, jobs, machines)
		if linMatches != aggMatches {
			fmt.Printf("  WARNING: aggregation changed the match count: %d vs %d\n",
				linMatches, aggMatches)
		}
		speedup := float64(linTime) / float64(aggTime)
		fmt.Printf("  %-10d %14s %14s %10.1fx\n", classes, linTime, aggTime, speedup)
	}
	fmt.Println()
}

// runE15 measures priority preemption (paper §4: a claimed machine is
// "still interested in hearing from higher priority customers"): with
// preemption on, the high-priority user's first result arrives while
// low-priority jobs still occupy the saturated pool.
func runE15(seed int64) {
	fmt.Println("E15: priority preemption on a saturated pool")
	fmt.Println("  pool: 8 dedicated machines ranking vip 10x; 48 long jobs from 3 users")
	fmt.Printf("  %-12s %12s %12s %14s %12s\n",
		"preemption", "preemptions", "completed", "vip-first(s)", "wasted")
	for _, preempt := range []bool{false, true} {
		cfg := sim.Config{
			Pool: sim.PoolSpec{Machines: 8, DesktopFraction: 0, Classes: 1,
				RankExpr: `member(other.Owner, {"vip"}) * 10`},
			Workload: sim.JobSpec{Jobs: 48, MeanRuntime: 20000,
				Users: []string{"peon", "peon2", "vip"}},
			Seed:       seed,
			Duration:   2 * 86400,
			Preemption: preempt,
		}
		s := sim.New(cfg)
		m := s.Run()
		vipFirst := int64(-1)
		for _, c := range s.Customers() {
			if c.Owner() != "vip" {
				continue
			}
			for _, j := range c.Snapshot() {
				if cd, ok := j.Ad.Eval("CompletionDate").IntVal(); ok && cd > 0 {
					if vipFirst == -1 || cd < vipFirst {
						vipFirst = cd
					}
				}
			}
		}
		fmt.Printf("  %-12v %12d %12d %14d %12.0f\n",
			preempt, m.Preemptions, m.Completed, vipFirst, m.WastedWork)
	}
	fmt.Println()
}

func timeCycle(cfg matchmaker.Config, jobs, machines []*classad.Ad) (time.Duration, int) {
	mm := matchmaker.New(cfg)
	start := time.Now()
	matches := mm.Negotiate(jobs, machines)
	return time.Since(start), len(matches)
}

func syntheticMachines(n int, seed int64) []*classad.Ad {
	eng := sim.NewEngine(seed)
	pool := sim.BuildPool(sim.PoolSpec{
		Machines: n,
		ArchMix:  map[string]float64{"INTEL": 0.7, "SPARC": 0.3},
	}, eng, classad.FixedEnv(0, seed))
	out := make([]*classad.Ad, n)
	for i, m := range pool {
		ad, err := m.Res.Advertise()
		if err != nil {
			panic(err)
		}
		out[i] = ad
	}
	return out
}

func regularMachines(n, classes int, seed int64) []*classad.Ad {
	out := make([]*classad.Ad, n)
	for i := range out {
		c := i % classes
		ad := classad.NewAd()
		ad.SetString(classad.AttrType, "Machine")
		ad.SetString(classad.AttrName, fmt.Sprintf("m%05d", i))
		ad.SetString("Arch", "INTEL")
		ad.SetString("OpSys", "SOLARIS251")
		ad.SetInt("Memory", int64(32*(c+1)))
		ad.SetInt("Mips", int64(100+c))
		out[i] = ad
	}
	return out
}

func syntheticJobs(n int, seed int64) []*classad.Ad {
	eng := sim.NewEngine(seed + 1)
	customers := sim.BuildWorkload(sim.JobSpec{
		Jobs:    n,
		Users:   []string{"u1", "u2", "u3", "u4"},
		ArchMix: map[string]float64{"INTEL": 0.7, "SPARC": 0.3},
	}, eng, classad.FixedEnv(0, seed))
	var out []*classad.Ad
	for _, c := range customers {
		out = append(out, c.IdleRequests()...)
	}
	return out
}
