// Command csubmit delivers job classads to a running customer agent's
// queue.
//
// Usage:
//
//	csubmit -agent HOST:PORT [-work CPU_SECONDS] FILE...
//	csubmit -agent HOST:PORT -spec submit.sub [-cluster N]
//
// Plain FILEs hold one job ad each in the shape of the paper's
// Figure 2. With -spec, the file is a submit-description file
// ("executable = ...; queue 10") expanded into one ad per queued job.
// The agent stamps Owner, JobId and QDate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/classad"
	"repro/internal/classad/analysis"
	"repro/internal/matchmaker"
	"repro/internal/netx"
	"repro/internal/protocol"
	"repro/internal/submit"
)

func main() {
	agentAddr := flag.String("agent", "127.0.0.1:9620", "customer agent address")
	work := flag.Int64("work", 0, "job CPU demand in seconds (for simulated execution)")
	spec := flag.String("spec", "", "submit-description file to expand and queue")
	cluster := flag.Int("cluster", 1, "cluster number for $(Cluster) in -spec files")
	flag.Parse()
	if *spec != "" {
		data, err := os.ReadFile(*spec)
		if err != nil {
			fatalf("%v", err)
		}
		jobs, err := submit.Parse(string(data), *cluster)
		if err != nil {
			fatalf("%v", err)
		}
		for _, j := range jobs {
			if j.Process == 0 {
				// One lint per cluster: every process shares the
				// template, so the findings repeat verbatim.
				lintWarn(fmt.Sprintf("%s (cluster %d)", *spec, j.Cluster), j.Ad)
			}
			name, trace, err := submitAd(*agentAddr, j.Ad, int64(j.Work))
			if err != nil {
				fatalf("%s: %v", *spec, err)
			}
			fmt.Printf("submitted %d.%d as %s%s\n", j.Cluster, j.Process, name, traceSuffix(trace))
		}
		fmt.Printf("%d job(s) queued from %s\n", len(jobs), *spec)
		return
	}
	if flag.NArg() == 0 {
		fatalf("no job files given")
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		ad, err := classad.Parse(string(data))
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		lintWarn(path, ad)
		name, trace, err := submitAd(*agentAddr, ad, *work)
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		fmt.Printf("submitted %s as %s%s\n", path, name, traceSuffix(trace))
	}
}

// lintWarn reports static-analysis findings on an ad about to be
// submitted. Findings never block submission — the queue is the
// authority — but a typo'd attribute or an impossible constraint is
// cheaper to fix now than after the job idles forever. The pass
// includes the index-friendliness lint (CAD401/CAD402): a job whose
// constraint the matchmaker's offer index cannot prune on will cost a
// full pool scan every negotiation cycle.
func lintWarn(origin string, ad *classad.Ad) {
	for _, d := range analysis.AnalyzeAd(ad, nil) {
		fmt.Fprintf(os.Stderr, "csubmit: lint: %s: %s\n", origin, d)
	}
	for _, d := range matchmaker.LintIndex(ad, nil) {
		fmt.Fprintf(os.Stderr, "csubmit: lint: %s: %s\n", origin, d)
	}
}

// submitAd queues one ad and returns the agent-assigned name plus the
// causal trace ID the agent minted for the job (empty when talking to
// an older agent).
func submitAd(addr string, ad *classad.Ad, work int64) (string, string, error) {
	conn, err := netx.DefaultDialer.Dial(addr)
	if err != nil {
		return "", "", err
	}
	defer conn.Close()
	if err := protocol.Write(conn, &protocol.Envelope{
		Type:     protocol.TypeSubmit,
		Ad:       protocol.EncodeAd(ad),
		Lifetime: work,
	}); err != nil {
		return "", "", err
	}
	reply, err := protocol.Read(bufio.NewReader(conn))
	if err != nil {
		return "", "", err
	}
	if reply.Type != protocol.TypeAck {
		return "", "", fmt.Errorf("%s", reply.Reason)
	}
	return reply.Name, reply.Trace, nil
}

// traceSuffix renders the trace pointer shown after a submission:
// `cstatus -debug-addr ... -trace <id>` replays the job's causal story.
func traceSuffix(trace string) string {
	if trace == "" {
		return ""
	}
	return fmt.Sprintf(" (trace %s)", trace)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "csubmit: "+format+"\n", args...)
	os.Exit(2)
}
