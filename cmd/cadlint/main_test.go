package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/classad"
	"repro/internal/collector"
)

const lintDir = "../../testdata/lint"

// TestGolden runs cadlint over every testdata/lint/*.ad file and
// compares output and exit status against the .want file next to it.
// The first line of a .want file is "exit N"; the rest is the exact
// stdout with the directory prefix stripped.
func TestGolden(t *testing.T) {
	ads, err := filepath.Glob(filepath.Join(lintDir, "*.ad"))
	if err != nil || len(ads) == 0 {
		t.Fatalf("no golden ads in %s: %v", lintDir, err)
	}
	sort.Strings(ads)
	for _, adPath := range ads {
		name := strings.TrimSuffix(filepath.Base(adPath), ".ad")
		t.Run(name, func(t *testing.T) {
			wantRaw, err := os.ReadFile(filepath.Join(lintDir, name+".want"))
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			lines := strings.SplitN(strings.TrimRight(string(wantRaw), "\n"), "\n", 2)
			wantExit, err := strconv.Atoi(strings.TrimPrefix(lines[0], "exit "))
			if err != nil {
				t.Fatalf("bad exit line %q: %v", lines[0], err)
			}
			wantOut := ""
			if len(lines) > 1 {
				wantOut = lines[1] + "\n"
			}

			var stdout, stderr bytes.Buffer
			code := run([]string{adPath}, &stdout, &stderr)
			got := strings.ReplaceAll(stdout.String(), lintDir+string(filepath.Separator), "")
			if code != wantExit {
				t.Errorf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, wantExit, stdout.String(), stderr.String())
			}
			if got != wantOut {
				t.Errorf("output mismatch\ngot:\n%s\nwant:\n%s", got, wantOut)
			}
		})
	}
}

// TestUnsatNamesConjunct pins the acceptance criterion: linting
// unsat.ad exits non-zero and the report names the unsatisfiable
// conjuncts.
func TestUnsatNamesConjunct(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{filepath.Join(lintDir, "unsat.ad")}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("exit = 0, want non-zero; stdout:\n%s", stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"CAD201", "other.Memory > 64", "other.Memory < 32"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestShippedAdsClean pins the other acceptance criterion: every
// shipped ad outside the lint fixtures exits zero.
func TestShippedAdsClean(t *testing.T) {
	for _, dir := range []string{"../../testdata", "../../examples/ads"} {
		ads, _ := filepath.Glob(filepath.Join(dir, "*.ad"))
		for _, adPath := range ads {
			var stdout, stderr bytes.Buffer
			if code := run([]string{adPath}, &stdout, &stderr); code != 0 {
				t.Errorf("cadlint %s: exit %d\n%s%s", adPath, code, stdout.String(), stderr.String())
			}
		}
	}
}

// TestStrictPromotesWarnings checks that -strict fails on a
// warnings-only ad.
func TestStrictPromotesWarnings(t *testing.T) {
	path := filepath.Join(lintDir, "typo.ad")
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("without -strict: exit %d, want 0\n%s", code, stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-strict", path}, &stdout, &stderr); code != 1 {
		t.Fatalf("with -strict: exit %d, want 1\n%s", code, stdout.String())
	}
}

// TestParseErrorIsClickable checks that a syntax error prints as
// file:line:col and exits with the parse-failure status (2, not 1:
// the file could not be analyzed at all).
func TestParseErrorIsClickable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.ad")
	if err := os.WriteFile(path, []byte("[\n  Memory = ;\n]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{path}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stdout.String(), path+":2:") {
		t.Errorf("diagnostic not clickable: %q", stdout.String())
	}
}

// TestExitContract pins the documented CLI contract: 0 = clean, 1 =
// diagnostics, 2 = usage/parse/IO failure — and that -h documents it.
func TestExitContract(t *testing.T) {
	dir := t.TempDir()
	broken := filepath.Join(dir, "broken.ad")
	if err := os.WriteFile(broken, []byte("[ Memory = ;"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{filepath.Join(lintDir, "clean.ad")}, 0},
		{"diagnostics", []string{filepath.Join(lintDir, "unsat.ad")}, 1},
		{"warnings without strict", []string{filepath.Join(lintDir, "typo.ad")}, 0},
		{"warnings with strict", []string{"-strict", filepath.Join(lintDir, "typo.ad")}, 1},
		{"parse failure", []string{broken}, 2},
		{"parse failure beats diagnostics", []string{broken, filepath.Join(lintDir, "unsat.ad")}, 2},
		{"missing file", []string{filepath.Join(dir, "nope.ad")}, 2},
		{"no arguments", nil, 2},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"against and corpus", []string{"-against", "x.ad", "-corpus", "y.ad"}, 2},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != tc.want {
			t.Errorf("%s: exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
				tc.name, code, tc.want, stdout.String(), stderr.String())
		}
	}

	// The usage text must document the contract.
	var stdout, stderr bytes.Buffer
	run([]string{"-h"}, &stdout, &stderr)
	if !strings.Contains(stderr.String(), "exit status: 0 = clean, 1 = diagnostics") {
		t.Errorf("usage does not document the exit contract:\n%s", stderr.String())
	}
}

// runGolden compares one invocation of the tool against a .want file:
// first line "exit N", rest the exact stdout with the lint directory
// prefix stripped.
func runGolden(t *testing.T, wantPath string, args ...string) {
	t.Helper()
	wantRaw, err := os.ReadFile(wantPath)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	lines := strings.SplitN(strings.TrimRight(string(wantRaw), "\n"), "\n", 2)
	wantExit, err := strconv.Atoi(strings.TrimPrefix(lines[0], "exit "))
	if err != nil {
		t.Fatalf("bad exit line %q: %v", lines[0], err)
	}
	wantOut := ""
	if len(lines) > 1 {
		wantOut = lines[1] + "\n"
	}
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	got := strings.ReplaceAll(stdout.String(), lintDir+string(filepath.Separator), "")
	if code != wantExit {
		t.Errorf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, wantExit, stdout.String(), stderr.String())
	}
	if got != wantOut {
		t.Errorf("output mismatch\ngot:\n%s\nwant:\n%s", got, wantOut)
	}
}

// TestAgainstMode pins the bilateral fixture: a request/offer pair
// with contradictory mutual constraints is flagged CAD301 on both
// sides, plus the CAD303 rank warning.
func TestAgainstMode(t *testing.T) {
	runGolden(t, filepath.Join(lintDir, "bilateral", "pair.want"),
		"-against", filepath.Join(lintDir, "bilateral", "offers.ad"),
		filepath.Join(lintDir, "bilateral", "request.ad"))
}

// TestCorpusMode pins the pool audit: a cross-ad type conflict
// (CAD304) and the dead ads it strands (CAD305), with schema hints.
func TestCorpusMode(t *testing.T) {
	dir := filepath.Join(lintDir, "corpus")
	runGolden(t, filepath.Join(dir, "corpus.want"), "-corpus",
		filepath.Join(dir, "dead-job.ad"), filepath.Join(dir, "live-job.ad"),
		filepath.Join(dir, "machine-a.ad"), filepath.Join(dir, "machine-b.ad"))
}

// TestIndexMode pins the index-friendliness pass: CAD401 for an
// unindexable constraint, CAD402 for a comparison against a literal
// error.
func TestIndexMode(t *testing.T) {
	dir := filepath.Join(lintDir, "index")
	runGolden(t, filepath.Join(dir, "index.want"), "-index",
		filepath.Join(dir, "unindexable.ad"), filepath.Join(dir, "unsat.ad"))
}

// TestAgainstShippedAdsClean is the zero-false-positive acceptance
// check: the shipped example pair genuinely matches, so the bilateral
// analyzer must stay silent about it, in both directions.
func TestAgainstShippedAdsClean(t *testing.T) {
	job := "../../examples/ads/job.ad"
	machine := "../../examples/ads/machine.ad"
	for _, args := range [][]string{
		{"-against", machine, job},
		{"-against", job, machine},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Errorf("cadlint %v: exit %d\n%s%s", args, code, stdout.String(), stderr.String())
		}
	}
}

// TestPoolMode lints the ads of a live in-process collector.
func TestPoolMode(t *testing.T) {
	store := collector.New(nil)
	srv := collector.NewServer(store, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	good := classad.MustParse(`[ Name = "good"; Type = "Machine"; Memory = 64; Rank = other.Mips; Constraint = other.Type == "Job" ]`)
	bad := classad.MustParse(`[ Name = "bad"; Type = "Job"; Rank = other.Mips; Constraint = other.Memory > 64 && other.Memory < 32 ]`)
	client := &collector.Client{Addr: addr}
	for _, ad := range []*classad.Ad{good, bad} {
		if err := client.Advertise(ad, 60); err != nil {
			t.Fatal(err)
		}
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-pool", addr}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "good: ok") {
		t.Errorf("clean ad not reported ok:\n%s", out)
	}
	if !strings.Contains(out, "bad:") || !strings.Contains(out, "CAD201") {
		t.Errorf("unsatisfiable pool ad not flagged:\n%s", out)
	}
}
