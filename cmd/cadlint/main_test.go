package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/classad"
	"repro/internal/collector"
)

const lintDir = "../../testdata/lint"

// TestGolden runs cadlint over every testdata/lint/*.ad file and
// compares output and exit status against the .want file next to it.
// The first line of a .want file is "exit N"; the rest is the exact
// stdout with the directory prefix stripped.
func TestGolden(t *testing.T) {
	ads, err := filepath.Glob(filepath.Join(lintDir, "*.ad"))
	if err != nil || len(ads) == 0 {
		t.Fatalf("no golden ads in %s: %v", lintDir, err)
	}
	sort.Strings(ads)
	for _, adPath := range ads {
		name := strings.TrimSuffix(filepath.Base(adPath), ".ad")
		t.Run(name, func(t *testing.T) {
			wantRaw, err := os.ReadFile(filepath.Join(lintDir, name+".want"))
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			lines := strings.SplitN(strings.TrimRight(string(wantRaw), "\n"), "\n", 2)
			wantExit, err := strconv.Atoi(strings.TrimPrefix(lines[0], "exit "))
			if err != nil {
				t.Fatalf("bad exit line %q: %v", lines[0], err)
			}
			wantOut := ""
			if len(lines) > 1 {
				wantOut = lines[1] + "\n"
			}

			var stdout, stderr bytes.Buffer
			code := run([]string{adPath}, &stdout, &stderr)
			got := strings.ReplaceAll(stdout.String(), lintDir+string(filepath.Separator), "")
			if code != wantExit {
				t.Errorf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, wantExit, stdout.String(), stderr.String())
			}
			if got != wantOut {
				t.Errorf("output mismatch\ngot:\n%s\nwant:\n%s", got, wantOut)
			}
		})
	}
}

// TestUnsatNamesConjunct pins the acceptance criterion: linting
// unsat.ad exits non-zero and the report names the unsatisfiable
// conjuncts.
func TestUnsatNamesConjunct(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{filepath.Join(lintDir, "unsat.ad")}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("exit = 0, want non-zero; stdout:\n%s", stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"CAD201", "other.Memory > 64", "other.Memory < 32"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestShippedAdsClean pins the other acceptance criterion: every
// shipped ad outside the lint fixtures exits zero.
func TestShippedAdsClean(t *testing.T) {
	for _, dir := range []string{"../../testdata", "../../examples/ads"} {
		ads, _ := filepath.Glob(filepath.Join(dir, "*.ad"))
		for _, adPath := range ads {
			var stdout, stderr bytes.Buffer
			if code := run([]string{adPath}, &stdout, &stderr); code != 0 {
				t.Errorf("cadlint %s: exit %d\n%s%s", adPath, code, stdout.String(), stderr.String())
			}
		}
	}
}

// TestStrictPromotesWarnings checks that -strict fails on a
// warnings-only ad.
func TestStrictPromotesWarnings(t *testing.T) {
	path := filepath.Join(lintDir, "typo.ad")
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("without -strict: exit %d, want 0\n%s", code, stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-strict", path}, &stdout, &stderr); code != 1 {
		t.Fatalf("with -strict: exit %d, want 1\n%s", code, stdout.String())
	}
}

// TestParseErrorIsClickable checks that a syntax error prints as
// file:line:col and fails the run.
func TestParseErrorIsClickable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.ad")
	if err := os.WriteFile(path, []byte("[\n  Memory = ;\n]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{path}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), path+":2:") {
		t.Errorf("diagnostic not clickable: %q", stdout.String())
	}
}

// TestPoolMode lints the ads of a live in-process collector.
func TestPoolMode(t *testing.T) {
	store := collector.New(nil)
	srv := collector.NewServer(store, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	good := classad.MustParse(`[ Name = "good"; Type = "Machine"; Memory = 64; Rank = other.Mips; Constraint = other.Type == "Job" ]`)
	bad := classad.MustParse(`[ Name = "bad"; Type = "Job"; Rank = other.Mips; Constraint = other.Memory > 64 && other.Memory < 32 ]`)
	client := &collector.Client{Addr: addr}
	for _, ad := range []*classad.Ad{good, bad} {
		if err := client.Advertise(ad, 60); err != nil {
			t.Fatal(err)
		}
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-pool", addr}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "good: ok") {
		t.Errorf("clean ad not reported ok:\n%s", out)
	}
	if !strings.Contains(out, "bad:") || !strings.Contains(out, "CAD201") {
		t.Errorf("unsatisfiable pool ad not flagged:\n%s", out)
	}
}
