// Command cadlint statically checks classads for the silent mistakes
// that make ads never match: type-confused three-valued comparisons,
// references that can never bind (with did-you-mean suggestions),
// unsatisfiable or tautological constraint conjuncts, and constant
// Rank expressions (paper §5's "constraints which can never be
// satisfied by the pool", answered statically).
//
// Beyond the single-ad passes it answers the bilateral question at the
// heart of §3.2's Constraint/Constraint match:
//
//	cadlint -against peers.ad file.ad ...   prove ad pairs can never match (CAD301-303)
//	cadlint -corpus file.ad ...             audit a pool: cross-ad type conflicts and
//	                                        dead ads no counterpart can match (CAD304-305)
//	cadlint -index file.ad ...              index-friendliness: warn when a constraint
//	                                        forces full pool scans (CAD401-402)
//
// Usage:
//
//	cadlint [-strict] [-q] [-index] file.ad [file2.ad ...]
//	cadlint [-strict] [-q] [-index] -pool host:port
//	cadlint [-strict] [-q] -against peers.ad file.ad ... | -pool host:port
//	cadlint [-strict] [-q] -corpus  file.ad ...          | -pool host:port
//
// Diagnostics print as file:line:col: CODE severity: message. Exit
// status: 0 = clean, 1 = diagnostics found (error severity; with
// -strict, warnings fail too), 2 = usage, parse, or I/O failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/classad"
	"repro/internal/classad/analysis"
	"repro/internal/collector"
	"repro/internal/matchmaker"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Exit codes: the documented CLI contract, pinned by TestExitContract.
const (
	exitClean = 0 // no findings (warnings allowed unless -strict)
	exitDiags = 1 // error-severity findings (with -strict: any finding)
	exitFatal = 2 // usage, parse, or I/O failure
)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cadlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pool := fs.String("pool", "", "lint the ads of the collector at `host:port` instead of files")
	strict := fs.Bool("strict", false, "exit non-zero on warnings too")
	quiet := fs.Bool("q", false, "suppress the per-file ok lines")
	against := fs.String("against", "", "bilateral mode: check every input ad against every ad in `peers.ad`")
	corpus := fs.Bool("corpus", false, "corpus mode: audit all input ads as one pool (type conflicts, dead ads)")
	index := fs.Bool("index", false, "also run the index-friendliness pass (CAD401/CAD402)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cadlint [-strict] [-q] [-index] file.ad ...\n")
		fmt.Fprintf(stderr, "       cadlint [-strict] [-q] [-index] -pool host:port\n")
		fmt.Fprintf(stderr, "       cadlint [-strict] [-q] -against peers.ad file.ad ... | -pool host:port\n")
		fmt.Fprintf(stderr, "       cadlint [-strict] [-q] -corpus  file.ad ...         | -pool host:port\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nexit status: 0 = clean, 1 = diagnostics found (with -strict, warnings fail\ntoo), 2 = usage, parse, or I/O failure\n")
	}
	if err := fs.Parse(args); err != nil {
		return exitFatal
	}
	if *against != "" && *corpus {
		fmt.Fprintln(stderr, "cadlint: -against and -corpus are mutually exclusive")
		return exitFatal
	}
	if *pool != "" && fs.NArg() > 0 {
		fmt.Fprintln(stderr, "cadlint: -pool and file arguments are mutually exclusive")
		return exitFatal
	}
	if *pool == "" && fs.NArg() == 0 {
		fs.Usage()
		return exitFatal
	}

	fatal := false
	var errs, warns int
	count := func(d analysis.Diagnostic) {
		switch d.Severity {
		case analysis.Error:
			errs++
		case analysis.Warning:
			warns++
		}
	}

	// Collect the subject ads from the collector or the file list.
	// Parse and read failures are reported immediately and poison the
	// exit status (2), but the remaining files still lint.
	var subjects []analysis.CorpusAd
	if *pool != "" {
		client := &collector.Client{Addr: *pool}
		ads, err := client.Query(classad.NewAd()) // empty constraint: match all
		if err != nil {
			fmt.Fprintf(stderr, "cadlint: query %s: %v\n", *pool, err)
			return exitFatal
		}
		for i, ad := range ads {
			origin := fmt.Sprintf("%s[%d]", *pool, i)
			if name, ok := adName(ad); ok {
				origin = name
			}
			subjects = append(subjects, analysis.CorpusAd{Origin: origin, Ad: ad})
		}
	} else {
		for _, path := range fs.Args() {
			loaded, ok := loadAds(path, stdout, stderr)
			if !ok {
				fatal = true
				continue
			}
			subjects = append(subjects, loaded...)
		}
	}

	switch {
	case *against != "":
		peers, ok := loadAds(*against, stdout, stderr)
		if !ok {
			return exitFatal
		}
		for _, subj := range subjects {
			found := 0
			for _, peer := range peers {
				rep := analysis.AnalyzeMatch(subj.Ad, peer.Ad, nil)
				for _, d := range rep.LeftDiags {
					count(d)
					found++
					fmt.Fprintf(stdout, "%s: against %s: %s\n", subj.Origin, peer.Origin, d)
				}
				for _, d := range rep.RightDiags {
					count(d)
					found++
					fmt.Fprintf(stdout, "%s: against %s: %s\n", peer.Origin, subj.Origin, d)
				}
			}
			if found == 0 && !*quiet {
				fmt.Fprintf(stdout, "%s: ok against %d ad(s)\n", subj.Origin, len(peers))
			}
		}
	case *corpus:
		finds := analysis.AuditCorpus(subjects, nil)
		for _, f := range finds {
			count(f.Diag)
			fmt.Fprintf(stdout, "%s\n", f)
		}
		if len(finds) == 0 && !*quiet {
			fmt.Fprintf(stdout, "corpus of %d ad(s): ok\n", len(subjects))
		}
	default:
		for _, subj := range subjects {
			diags := analysis.AnalyzeAd(subj.Ad, nil)
			if *index {
				diags = append(diags, matchmaker.LintIndex(subj.Ad, nil)...)
			}
			for _, d := range diags {
				count(d)
				fmt.Fprintf(stdout, "%s:%s\n", subj.Origin, d)
			}
			if len(diags) == 0 && !*quiet {
				fmt.Fprintf(stdout, "%s: ok\n", subj.Origin)
			}
		}
	}

	switch {
	case fatal:
		return exitFatal
	case errs > 0 || (*strict && warns > 0):
		return exitDiags
	default:
		return exitClean
	}
}

// loadAds reads and parses one file into origin-tagged ads. On
// failure it reports (parse errors to stdout as clickable
// file:line:col diagnostics, I/O errors to stderr) and returns
// ok=false.
func loadAds(path string, stdout, stderr io.Writer) ([]analysis.CorpusAd, bool) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "cadlint: %v\n", err)
		return nil, false
	}
	ads, err := parseAds(string(src))
	if err != nil {
		// SyntaxError renders as line:col: msg; prefixing the path
		// yields a clickable file:line:col locator.
		fmt.Fprintf(stdout, "%s:%v\n", path, err)
		return nil, false
	}
	out := make([]analysis.CorpusAd, 0, len(ads))
	for i, ad := range ads {
		origin := path
		if len(ads) > 1 {
			origin = fmt.Sprintf("%s[%d]", path, i)
		}
		out = append(out, analysis.CorpusAd{Origin: origin, Ad: ad})
	}
	return out, true
}

// parseAds accepts either a stream of bracketed ads or a single ad in
// any accepted syntax (bracketed or bare attribute list).
func parseAds(src string) ([]*classad.Ad, error) {
	if ads, err := classad.ParseMulti(src); err == nil {
		return ads, nil
	}
	ad, err := classad.Parse(src)
	if err != nil {
		return nil, err
	}
	return []*classad.Ad{ad}, nil
}

func adName(ad *classad.Ad) (string, bool) {
	e, ok := ad.Lookup(classad.AttrName)
	if !ok {
		return "", false
	}
	v := classad.EvalExprAgainst(e, ad, nil, nil)
	s, ok := v.StringVal()
	return s, ok && s != ""
}
