// Command cadlint statically checks classads for the silent mistakes
// that make ads never match: type-confused three-valued comparisons,
// references that can never bind (with did-you-mean suggestions),
// unsatisfiable or tautological constraint conjuncts, and constant
// Rank expressions (paper §5's "constraints which can never be
// satisfied by the pool", answered statically).
//
// Usage:
//
//	cadlint file.ad [file2.ad ...]   lint ad files (one or many ads per file)
//	cadlint -pool host:port          lint every ad advertised in a live collector
//
// Diagnostics print as file:line:col: CODE severity: message. The exit
// status is 1 when any error-severity diagnostic (or a parse failure)
// is found, 0 otherwise; -strict promotes warnings to the failing
// exit status too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/classad"
	"repro/internal/classad/analysis"
	"repro/internal/collector"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cadlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pool := fs.String("pool", "", "lint the ads of the collector at `host:port` instead of files")
	strict := fs.Bool("strict", false, "exit non-zero on warnings too")
	quiet := fs.Bool("q", false, "suppress the per-file ok lines")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cadlint [-strict] [-q] file.ad ...\n")
		fmt.Fprintf(stderr, "       cadlint [-strict] [-q] -pool host:port\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var errs, warns int
	lint := func(origin string, ad *classad.Ad) {
		diags := analysis.AnalyzeAd(ad, nil)
		for _, d := range diags {
			switch d.Severity {
			case analysis.Error:
				errs++
			case analysis.Warning:
				warns++
			}
			fmt.Fprintf(stdout, "%s:%s\n", origin, d)
		}
		if len(diags) == 0 && !*quiet {
			fmt.Fprintf(stdout, "%s: ok\n", origin)
		}
	}

	switch {
	case *pool != "":
		if fs.NArg() > 0 {
			fmt.Fprintln(stderr, "cadlint: -pool and file arguments are mutually exclusive")
			return 2
		}
		client := &collector.Client{Addr: *pool}
		ads, err := client.Query(classad.NewAd()) // empty constraint: match all
		if err != nil {
			fmt.Fprintf(stderr, "cadlint: query %s: %v\n", *pool, err)
			return 2
		}
		for i, ad := range ads {
			origin := fmt.Sprintf("%s[%d]", *pool, i)
			if name, ok := adName(ad); ok {
				origin = name
			}
			lint(origin, ad)
		}
	case fs.NArg() == 0:
		fs.Usage()
		return 2
	default:
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(stderr, "cadlint: %v\n", err)
				errs++
				continue
			}
			ads, err := parseAds(string(src))
			if err != nil {
				// SyntaxError renders as line:col: msg; prefixing the
				// path yields a clickable file:line:col locator.
				fmt.Fprintf(stdout, "%s:%v\n", path, err)
				errs++
				continue
			}
			for i, ad := range ads {
				origin := path
				if len(ads) > 1 {
					origin = fmt.Sprintf("%s[%d]", path, i)
				}
				lint(origin, ad)
			}
		}
	}

	if errs > 0 || (*strict && warns > 0) {
		return 1
	}
	return 0
}

// parseAds accepts either a stream of bracketed ads or a single ad in
// any accepted syntax (bracketed or bare attribute list).
func parseAds(src string) ([]*classad.Ad, error) {
	if ads, err := classad.ParseMulti(src); err == nil {
		return ads, nil
	}
	ad, err := classad.Parse(src)
	if err != nil {
		return nil, err
	}
	return []*classad.Ad{ad}, nil
}

func adName(ad *classad.Ad) (string, bool) {
	e, ok := ad.Lookup(classad.AttrName)
	if !ok {
		return "", false
	}
	v := classad.EvalExprAgainst(e, ad, nil, nil)
	s, ok := v.StringVal()
	return s, ok && s != ""
}
