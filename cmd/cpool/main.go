// Command cpool runs the pool manager: the collector endpoint plus a
// periodic negotiation cycle (paper §4). It is the only always-on
// service the framework needs, and it is stateless with respect to
// matches: restarting it loses nothing but the in-flight cycle.
//
// Usage:
//
//	cpool [-listen ADDR] [-period SECONDS] [-fairshare] [-aggregate] [-debug-addr ADDR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/matchmaker"
	"repro/internal/netx"
	"repro/internal/obs"
	"repro/internal/pool"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9618", "collector listen address")
	period := flag.Int64("period", 300, "negotiation cycle period in seconds")
	fairShare := flag.Bool("fairshare", true, "order customers by past usage")
	aggregate := flag.Bool("aggregate", false, "enable group matching over regular ads")
	usageFile := flag.String("usage", "", "persist fair-share history to this file")
	historyFile := flag.String("history", "", "append match records (classads) to this file")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /events and pprof on this address")
	verbose := flag.Bool("v", false, "log every cycle")
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	var history *os.File
	if *historyFile != "" {
		var err error
		history, err = os.OpenFile(*historyFile, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpool: %v\n", err)
			os.Exit(2)
		}
		defer history.Close()
	}
	cfg := pool.ManagerConfig{
		Matchmaker: matchmaker.Config{FairShare: *fairShare, Aggregate: *aggregate},
		Logf:       logf,
		UsageFile:  *usageFile,
	}
	if history != nil {
		cfg.History = history
	}
	if *debugAddr != "" {
		o := obs.New()
		netx.Instrument(o.Registry())
		cfg.Obs = o
		ds, err := o.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpool: debug endpoint: %v\n", err)
			os.Exit(2)
		}
		defer ds.Close()
		log.Printf("cpool: debug endpoint on http://%s", ds.Addr())
	}
	mgr := pool.NewManager(cfg)
	addr, err := mgr.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpool: %v\n", err)
		os.Exit(2)
	}
	defer mgr.Close()
	log.Printf("cpool: collector on %s, negotiating every %ds", addr, *period)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(time.Duration(*period) * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			res := mgr.RunCycle()
			log.Printf("cpool: cycle %d: %d requests, %d offers, %d matches, %d notified, %d errors",
				mgr.Cycles(), res.Requests, res.Offers, len(res.Matches), res.Notified, len(res.Errors))
			for _, err := range res.Errors {
				log.Printf("cpool:   %v", err)
			}
		case <-stop:
			log.Printf("cpool: shutting down")
			return
		}
	}
}
