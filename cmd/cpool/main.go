// Command cpool runs the pool manager: the collector endpoint plus a
// periodic negotiation cycle (paper §4). It is the only always-on
// service the framework needs, and it is stateless with respect to
// matches: restarting it loses nothing but the in-flight cycle. With
// -store-dir and -usage-dir even the soft state (advertisements,
// fair-share accounting, the leadership lease) survives a restart,
// and with -ha-name the manager's negotiator half takes part in
// leader election against standby cnegotiator processes.
//
// With -period 0 the manager goes event-driven: negotiation sleeps on
// the ad store's change feed and wakes only when an advertisement
// actually changes, with a periodic full-rebuild fallback (-fallback)
// as the safety net. A quiet pool then costs no negotiation at all.
//
// Usage:
//
//	cpool [-listen ADDR] [-period SECONDS] [-fairshare] [-aggregate] [-debug-addr ADDR]
//	cpool -store-dir /var/pool/collector -usage-dir /var/pool/usage -ha-name mgr
//	cpool -period 0 [-fallback SECONDS]              # event-driven negotiation
//	cpool -collector-only                            # no local negotiation; cnegotiator pair matches
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/netx"
	"repro/internal/obs"
	"repro/internal/pool"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9618", "collector listen address")
	period := flag.Int64("period", 300, "negotiation cycle period in seconds (0: event-driven, negotiate on ad changes)")
	fallback := flag.Int64("fallback", 300, "event mode: full-rebuild fallback period in seconds")
	collectorOnly := flag.Bool("collector-only", false, "store ads and arbitrate the lease only; leave matching to cnegotiator")
	fairShare := flag.Bool("fairshare", true, "order customers by past usage")
	aggregate := flag.Bool("aggregate", false, "enable group matching over regular ads")
	usageFile := flag.String("usage", "", "persist fair-share history to this file")
	historyFile := flag.String("history", "", "append match records (classads) to this file")
	storeDir := flag.String("store-dir", "", "persist the ad store (WAL + snapshots) in this directory")
	usageDir := flag.String("usage-dir", "", "persist fair-share accounting as a durable ledger in this directory (supersedes -usage)")
	haName := flag.String("ha-name", "", "enroll in negotiator leader election under this name")
	leaseTTL := flag.Int64("lease-ttl", 0, "leadership lease duration in seconds (0 for the default)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /events and pprof on this address")
	verbose := flag.Bool("v", false, "log every cycle")
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	var history *os.File
	if *historyFile != "" {
		var err error
		history, err = os.OpenFile(*historyFile, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpool: %v\n", err)
			os.Exit(2)
		}
		defer history.Close()
	}
	cfg := pool.ManagerConfig{
		Matchmaker: matchmaker.Config{FairShare: *fairShare, Aggregate: *aggregate},
		Logf:       logf,
		UsageFile:  *usageFile,
		HAName:     *haName,
		LeaseTTL:   *leaseTTL,
	}
	if *storeDir != "" {
		store, err := collector.OpenDurable(*storeDir, nil, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpool: opening ad store: %v\n", err)
			os.Exit(2)
		}
		log.Printf("cpool: ad store in %s: %d ad(s) recovered", *storeDir, store.Len())
		cfg.Store = store
	}
	if *usageDir != "" {
		ledger, err := matchmaker.OpenUsageLedger(*usageDir, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpool: opening usage ledger: %v\n", err)
			os.Exit(2)
		}
		cfg.Ledger = ledger
	}
	if history != nil {
		cfg.History = history
	}
	if *debugAddr != "" {
		o := obs.New()
		netx.Instrument(o.Registry())
		cfg.Obs = o
		ds, err := o.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpool: debug endpoint: %v\n", err)
			os.Exit(2)
		}
		defer ds.Close()
		log.Printf("cpool: debug endpoint on http://%s", ds.Addr())
	}
	mgr := pool.NewManager(cfg)
	addr, err := mgr.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpool: %v\n", err)
		os.Exit(2)
	}
	defer mgr.Close()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	if *collectorOnly {
		// Collector-only mode: external cnegotiator processes hold the
		// lease and drive the cycles; this process just stores ads,
		// answers queries, and arbitrates the lease.
		log.Printf("cpool: collector on %s (no local negotiation)", addr)
		<-stop
		log.Printf("cpool: shutting down")
		return
	}
	if *period <= 0 {
		// Event-driven mode: negotiation sleeps on the store's change
		// feed; the fallback timer forces the classic full rebuild.
		el := mgr.StartEvents(time.Duration(*fallback) * time.Second)
		ctx, cancel := context.WithCancel(context.Background())
		go func() { <-stop; cancel() }()
		log.Printf("cpool: collector on %s, event-driven negotiation (fallback every %ds)", addr, *fallback)
		el.Run(ctx)
		log.Printf("cpool: shutting down")
		return
	}
	log.Printf("cpool: collector on %s, negotiating every %ds", addr, *period)
	ticker := time.NewTicker(time.Duration(*period) * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			res := mgr.RunCycle()
			if res.Standby {
				log.Printf("cpool: cycle %d: standby (another negotiator leads)", mgr.Cycles())
				continue
			}
			log.Printf("cpool: cycle %d: %d requests, %d offers, %d matches, %d notified, %d errors",
				mgr.Cycles(), res.Requests, res.Offers, len(res.Matches), res.Notified, len(res.Errors))
			for _, err := range res.Errors {
				log.Printf("cpool:   %v", err)
			}
		case <-stop:
			log.Printf("cpool: shutting down")
			return
		}
	}
}
