// Command cadeval evaluates classad expressions and tests pairwise
// matches from the command line — the debugging tool every classad
// deployment grows.
//
// Usage:
//
//	cadeval -expr 'EXPR' [-ad FILE]      evaluate EXPR against an ad
//	cadeval -match LEFT RIGHT            bilateral match of two ad files
//	cadeval -pretty FILE                 parse and pretty-print an ad
//	cadeval -functions                   list builtin functions
//
// With -match, the exit status is 0 for a match and 1 otherwise, so
// shell scripts can branch on compatibility.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/classad"
)

func main() {
	expr := flag.String("expr", "", "expression to evaluate")
	adFile := flag.String("ad", "", "classad file providing the evaluation scope")
	match := flag.Bool("match", false, "match two classad files (the two positional arguments)")
	pretty := flag.String("pretty", "", "parse a classad file and pretty-print it")
	functions := flag.Bool("functions", false, "list builtin functions")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cadeval -expr 'EXPR' [-ad FILE] | -match LEFT RIGHT | -pretty FILE | -functions\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *functions:
		fmt.Println(strings.Join(classad.BuiltinNames(), "\n"))
	case *pretty != "":
		ad := loadAd(*pretty)
		fmt.Println(ad.Pretty())
	case *match:
		if flag.NArg() != 2 {
			fatalf("-match needs exactly two ad files")
		}
		left, right := loadAd(flag.Arg(0)), loadAd(flag.Arg(1))
		res := classad.Match(left, right)
		fmt.Printf("matched:    %v\n", res.Matched)
		fmt.Printf("left  side: constraint=%v rank-of-right=%g\n", res.LeftOK, res.LeftRank)
		fmt.Printf("right side: constraint=%v rank-of-left=%g\n", res.RightOK, res.RightRank)
		if !res.Matched {
			os.Exit(1)
		}
	case *expr != "":
		var scope *classad.Ad
		if *adFile != "" {
			scope = loadAd(*adFile)
		}
		v, err := classad.EvalString(*expr, scope)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s  (%s)\n", v, v.Type())
		if msg := v.ErrMessage(); msg != "" {
			fmt.Fprintf(os.Stderr, "error detail: %s\n", msg)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func loadAd(path string) *classad.Ad {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	ad, err := classad.Parse(string(data))
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return ad
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cadeval: "+format+"\n", args...)
	os.Exit(2)
}
