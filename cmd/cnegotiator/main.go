// Command cnegotiator runs a standalone negotiator against a remote
// collector. Run two of them (or one next to a cpool started with
// -ha-name) for a highly available matchmaker: each heartbeat they
// compete for the leadership lease the collector arbitrates, the
// winner negotiates and stamps its lease epoch into every MATCH, and
// the loser stands by, warm-syncing the leader's fair-share ledger so
// a takeover starts with up-to-date accounting. The paper's soft-state
// design (§4.3) does the rest: everything else a dead negotiator knew
// is rebuilt from the agents' periodic advertisements.
//
// Usage:
//
//	cnegotiator -name nego-1 -pool HOST:9618 [-period SECONDS] [-usage-dir DIR]
//	            [-state ADDR] [-peer http://HOST:PORT] [-lease-ttl SECONDS]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/netx"
	"repro/internal/obs"
	"repro/internal/pool"
)

func main() {
	name := flag.String("name", "", "this negotiator's identity in leader election (required)")
	poolAddr := flag.String("pool", "127.0.0.1:9618", "collector address")
	period := flag.Int64("period", 60, "heartbeat/negotiation period in seconds")
	event := flag.Bool("event", false, "event mode: negotiate only when the collector's pool-change counter moved")
	fallbackEvery := flag.Int64("fallback-heartbeats", 10, "event mode: force a full negotiation every N heartbeats")
	leaseTTL := flag.Int64("lease-ttl", 0, "requested lease duration in seconds (0 for the collector's default)")
	fairShare := flag.Bool("fairshare", true, "order customers by past usage")
	aggregate := flag.Bool("aggregate", false, "enable group matching over regular ads")
	usageDir := flag.String("usage-dir", "", "persist fair-share accounting as a durable ledger in this directory")
	stateAddr := flag.String("state", "", "serve the warm-handoff state endpoint on this address")
	peer := flag.String("peer", "", "peer negotiator's state URL (http://host:port) to warm-sync from while standby")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /events and pprof on this address")
	verbose := flag.Bool("v", false, "log every tick")
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "cnegotiator: -name is required (each negotiator needs a distinct identity)")
		os.Exit(2)
	}

	var ledger *matchmaker.UsageLedger
	if *usageDir != "" {
		var err error
		ledger, err = matchmaker.OpenUsageLedger(*usageDir, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cnegotiator: opening usage ledger: %v\n", err)
			os.Exit(2)
		}
	}
	d := pool.NewNegotiatorDaemon(*name, &collector.Client{Addr: *poolAddr}, ledger,
		matchmaker.Config{FairShare: *fairShare, Aggregate: *aggregate})
	defer d.Close()
	d.LeaseTTL = *leaseTTL
	d.PeerState = *peer
	if *verbose {
		d.Logf = log.Printf
	}
	if *debugAddr != "" {
		o := obs.New()
		netx.Instrument(o.Registry())
		d.Instrument(o)
		ds, err := o.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cnegotiator: debug endpoint: %v\n", err)
			os.Exit(2)
		}
		defer ds.Close()
		log.Printf("cnegotiator: debug endpoint on http://%s", ds.Addr())
	}
	if *stateAddr != "" {
		ln, err := net.Listen("tcp", *stateAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cnegotiator: state endpoint: %v\n", err)
			os.Exit(2)
		}
		log.Printf("cnegotiator: state endpoint on http://%s", d.ServeState(ln))
	}
	log.Printf("cnegotiator: %s heartbeating %s every %ds", *name, *poolAddr, *period)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(time.Duration(*period) * time.Second)
	defer ticker.Stop()
	var beats int64
	for {
		select {
		case <-ticker.C:
			var res pool.CycleResult
			if *event {
				// Event mode: the lease heartbeat carries the collector's
				// pool-change counter; an unchanged pool skips the cycle.
				// Every -fallback-heartbeats ticks one is forced anyway —
				// the remote analogue of the in-process fallback rebuild.
				beats++
				res = d.TickEvent(*fallbackEvery > 0 && beats%*fallbackEvery == 0)
			} else {
				res = d.Tick()
			}
			if res.Standby {
				log.Printf("cnegotiator: %s", d)
				continue
			}
			if res.Skipped {
				if *verbose {
					log.Printf("cnegotiator: epoch %d: pool unchanged, cycle skipped", res.Epoch)
				}
				continue
			}
			log.Printf("cnegotiator: epoch %d cycle: %d requests, %d offers, %d matches, %d notified, %d errors",
				res.Epoch, res.Requests, res.Offers, len(res.Matches), res.Notified, len(res.Errors))
			for _, err := range res.Errors {
				log.Printf("cnegotiator:   %v", err)
			}
		case <-stop:
			log.Printf("cnegotiator: shutting down (%s)", d)
			return
		}
	}
}
