// End-to-end tests of the command-line tools: build the real binaries
// and run a miniature pool — manager, resource agent, customer agent —
// as separate processes, driving submission and observation through
// csubmit, cstatus, cqueue, cadeval and canalyze exactly as an
// operator would.
package matchmaking_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTools compiles every cmd/ binary once into a temp dir shared by
// the CLI tests.
var toolsDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "matchmaking-tools-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "building tools:", err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	toolsDir = dir
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func tool(name string, args ...string) *exec.Cmd {
	return exec.Command(filepath.Join(toolsDir, name), args...)
}

// freePort reserves a TCP port for a daemon to bind.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startDaemon launches a tool in the background and kills it at test
// end.
func startDaemon(t *testing.T, name string, args ...string) {
	t.Helper()
	cmd := tool(name, args...)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		if t.Failed() {
			t.Logf("%s output:\n%s", name, out.String())
		}
	})
}

// waitFor polls fn until it returns true or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if fn() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func runTool(t *testing.T, name string, args ...string) (string, error) {
	t.Helper()
	out, err := tool(name, args...).CombinedOutput()
	return string(out), err
}

func TestCLICadeval(t *testing.T) {
	out, err := runTool(t, "cadeval", "-expr", "1 + 2 * 3")
	if err != nil {
		t.Fatalf("%v: %s", err, out)
	}
	if !strings.Contains(out, "7") {
		t.Errorf("output %q", out)
	}
	// Match mode over the shipped test ads.
	out, err = runTool(t, "cadeval", "-match", "testdata/leonardo.ad", "testdata/job.ad")
	if err != nil {
		t.Fatalf("%v: %s", err, out)
	}
	if !strings.Contains(out, "matched:    true") {
		t.Errorf("match output:\n%s", out)
	}
	// Function listing.
	out, err = runTool(t, "cadeval", "-functions")
	if err != nil || !strings.Contains(out, "member") {
		t.Errorf("functions output err=%v:\n%s", err, out)
	}
	// Pretty printing round-trips the file.
	out, err = runTool(t, "cadeval", "-pretty", "testdata/job.ad")
	if err != nil || !strings.Contains(out, "run_sim") {
		t.Errorf("pretty output err=%v:\n%s", err, out)
	}
	// A failed match exits nonzero.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ad")
	if err := os.WriteFile(bad, []byte(`[ Constraint = false ]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runTool(t, "cadeval", "-match", bad, "testdata/job.ad"); err == nil {
		t.Error("failed match should exit nonzero")
	}
}

func TestCLICanalyze(t *testing.T) {
	dir := t.TempDir()
	jobFile := filepath.Join(dir, "impossible.ad")
	err := os.WriteFile(jobFile, []byte(`[
		Owner = "u";
		Constraint = other.Arch == "VAX" && other.Memory >= 1;
	]`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	out, err := runTool(t, "canalyze", "-job", jobFile, "testdata/leonardo.ad")
	if err != nil {
		t.Fatalf("%v: %s", err, out)
	}
	if !strings.Contains(out, "unsatisfiable") {
		t.Errorf("analyzer output:\n%s", out)
	}
}

// TestCLIFullPool is the operator's-eye view of Figure 3: every daemon
// a separate OS process, every observation through a tool.
func TestCLIFullPool(t *testing.T) {
	poolAddr := freePort(t)
	caAddr := freePort(t)
	dir := t.TempDir()
	historyFile := filepath.Join(dir, "history.log")

	startDaemon(t, "cpool", "-listen", poolAddr, "-period", "1",
		"-history", historyFile, "-v")
	waitFor(t, "collector up", 5*time.Second, func() bool {
		conn, err := net.Dial("tcp", poolAddr)
		if err != nil {
			return false
		}
		conn.Close()
		return true
	})

	startDaemon(t, "cagent", "-resource", "testdata/leonardo.ad",
		"-pool", poolAddr, "-period", "1")
	startDaemon(t, "cagent", "-customer", "raman", "-listen", caAddr,
		"-pool", poolAddr, "-period", "1")
	waitFor(t, "customer agent up", 5*time.Second, func() bool {
		conn, err := net.Dial("tcp", caAddr)
		if err != nil {
			return false
		}
		conn.Close()
		return true
	})

	// The machine shows up in cstatus.
	waitFor(t, "machine advertised", 10*time.Second, func() bool {
		out, err := runTool(t, "cstatus", "-pool", poolAddr, "-type", "Machine")
		return err == nil && strings.Contains(out, "leonardo.cs.wisc.edu")
	})

	// Submit the Figure 2 job.
	out, err := runTool(t, "csubmit", "-agent", caAddr, "-work", "3600",
		"testdata/job.ad")
	if err != nil {
		t.Fatalf("csubmit: %v: %s", err, out)
	}
	if !strings.Contains(out, "raman/job1") {
		t.Errorf("csubmit output: %s", out)
	}

	// Submit a batch from a submit-description file: four more jobs.
	out, err = runTool(t, "csubmit", "-agent", caAddr, "-spec", "testdata/batch.sub",
		"-cluster", "3")
	if err != nil {
		t.Fatalf("csubmit -spec: %v: %s", err, out)
	}
	if !strings.Contains(out, "4 job(s) queued") {
		t.Errorf("csubmit -spec output: %s", out)
	}
	out, err = runTool(t, "cqueue", "-agent", caAddr)
	if err != nil {
		t.Fatalf("cqueue: %v: %s", err, out)
	}
	if !strings.Contains(out, "5 job(s)") {
		t.Errorf("queue should hold 5 jobs:\n%s", out)
	}

	// Within a couple of negotiation cycles the job is Running on
	// leonardo, observable through cqueue.
	waitFor(t, "job running", 15*time.Second, func() bool {
		out, err := runTool(t, "cqueue", "-agent", caAddr)
		return err == nil && strings.Contains(out, "Running") &&
			strings.Contains(out, "leonardo.cs.wisc.edu")
	})

	// The match landed in the history log, queryable by chistory.
	waitFor(t, "history record", 10*time.Second, func() bool {
		out, err := runTool(t, "chistory",
			"-constraint", `other.Customer == "raman"`, historyFile)
		return err == nil && strings.Contains(out, "leonardo.cs.wisc.edu") &&
			strings.Contains(out, "1 of")
	})

	// The claimed machine advertises State = Claimed.
	waitFor(t, "claimed state visible", 10*time.Second, func() bool {
		out, err := runTool(t, "cstatus", "-pool", poolAddr,
			"-constraint", `other.State == "Claimed"`)
		return err == nil && strings.Contains(out, "leonardo.cs.wisc.edu")
	})

	// cadvertise can withdraw the machine ad by hand.
	out, err = runTool(t, "cadvertise", "-pool", poolAddr,
		"-invalidate", "leonardo.cs.wisc.edu")
	if err != nil {
		t.Fatalf("cadvertise -invalidate: %v: %s", err, out)
	}
	out, err = runTool(t, "cstatus", "-pool", poolAddr, "-type", "Machine")
	if err != nil {
		t.Fatalf("cstatus: %v: %s", err, out)
	}
	if strings.Contains(out, "leonardo.cs.wisc.edu") {
		// The RA re-advertises every second, so a race is possible;
		// only fail if it persists after invalidating again with the
		// agent gone. This is advisory.
		t.Logf("machine re-advertised immediately (expected with a live RA)")
	}
}
