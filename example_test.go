package matchmaking_test

import (
	"fmt"

	matchmaking "repro"
)

// ExampleMatch reproduces the paper's headline result: the Figure 2
// job matches the Figure 1 workstation, with the ranks the ads'
// expressions imply.
func ExampleMatch() {
	machine := matchmaking.MustParse(matchmaking.Figure1Source)
	job := matchmaking.MustParse(matchmaking.Figure2Source)
	res := matchmaking.Match(job, machine)
	fmt.Println(res.Matched)
	fmt.Printf("%.3f\n", res.LeftRank)
	fmt.Printf("%.0f\n", res.RightRank)
	// Output:
	// true
	// 23.893
	// 10
}

// ExampleEvalString shows the three-valued logic: strict comparison
// against a missing attribute is undefined, while || needs only one
// defined true.
func ExampleEvalString() {
	ad := matchmaking.MustParse(`[ Mips = 104 ]`)
	v1, _ := matchmaking.EvalString("Kflops >= 1000", ad)
	v2, _ := matchmaking.EvalString("Mips >= 10 || Kflops >= 1000", ad)
	fmt.Println(v1)
	fmt.Println(v2)
	// Output:
	// undefined
	// true
}

// ExampleNewMatchmaker runs one negotiation cycle: among compatible
// offers, the request's Rank picks the winner.
func ExampleNewMatchmaker() {
	offers := []*matchmaking.Ad{
		matchmaking.MustParse(`[ Type="Machine"; Name="slow"; Arch="INTEL"; Mips=50 ]`),
		matchmaking.MustParse(`[ Type="Machine"; Name="fast"; Arch="INTEL"; Mips=500 ]`),
	}
	request := matchmaking.MustParse(`[
		Type = "Job"; Owner = "alice";
		Constraint = other.Arch == "INTEL";
		Rank = other.Mips;
	]`)
	mm := matchmaking.NewMatchmaker(matchmaking.MatchmakerConfig{})
	for _, m := range mm.Negotiate([]*matchmaking.Ad{request}, offers) {
		name, _ := m.Offer.Eval("Name").StringVal()
		fmt.Printf("%s at rank %.0f\n", name, m.RequestRank)
	}
	// Output:
	// fast at rank 500
}

// ExampleAnalyze diagnoses an unsatisfiable request, including the
// pool-range hint for the impossible bound.
func ExampleAnalyze() {
	pool := []*matchmaking.Ad{
		matchmaking.MustParse(`[ Type="Machine"; Name="m1"; Memory=64 ]`),
		matchmaking.MustParse(`[ Type="Machine"; Name="m2"; Memory=128 ]`),
	}
	req := matchmaking.MustParse(`[
		Owner = "bob";
		Constraint = other.Memory >= 512;
	]`)
	a := matchmaking.Analyze(req, pool, nil)
	fmt.Println(a.Unsatisfiable)
	fmt.Println(a.Clauses[0].Suggestion)
	// Output:
	// true
	// pool's Memory ranges 64..128
}

// ExamplePartialEval folds a request's own attributes out of its
// constraint, leaving the residual a provider actually faces.
func ExamplePartialEval() {
	job := matchmaking.MustParse(`[ Memory = 31; ]`)
	e := matchmaking.MustParseExpr("other.Memory >= self.Memory && other.Memory >= 16")
	fmt.Println(matchmaking.PartialEval(e, job, nil))
	// Output:
	// (other.Memory >= 31) && (other.Memory >= 16)
}

// ExampleMatchGang co-allocates a workstation and a tape drive with a
// single nested-classad request (paper §3.1).
func ExampleMatchGang() {
	pool := []*matchmaking.Ad{
		matchmaking.MustParse(`[ Type="Machine"; Name="ws"; Arch="INTEL" ]`),
		matchmaking.MustParse(`[ Type="TapeDrive"; Name="tape"; TransferRate=12 ]`),
	}
	gang := matchmaking.MustParse(`[
		Owner = "alice";
		Gang = {
			[ Constraint = other.Type == "Machine" ],
			[ Constraint = other.Type == "TapeDrive" && other.TransferRate >= 10 ]
		};
	]`)
	gm, ok := matchmaking.MatchGang(gang, pool, nil)
	fmt.Println(ok)
	for i, oi := range gm.Offers {
		name, _ := pool[oi].Eval("Name").StringVal()
		fmt.Printf("slot %d: %s\n", i, name)
	}
	// Output:
	// true
	// slot 0: ws
	// slot 1: tape
}
