// Tests of the public facade: everything a downstream user touches
// goes through package matchmaking, so this file doubles as executable
// API documentation.
package matchmaking_test

import (
	"strings"
	"testing"

	matchmaking "repro"
)

func TestFacadeParseAndEval(t *testing.T) {
	ad, err := matchmaking.Parse(`[ Memory = 64; Twice = Memory * 2 ]`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := matchmaking.EvalString("Twice + 1", ad)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := v.IntVal(); !ok || n != 129 {
		t.Errorf("Twice + 1 = %v", v)
	}
	if _, err := matchmaking.Parse("[broken"); err == nil {
		t.Error("expected parse error")
	}
	var se *matchmaking.SyntaxError
	if _, err := matchmaking.ParseExpr("1 +"); err == nil {
		t.Error("expected expr error")
	} else if !strings.Contains(err.Error(), "line") {
		t.Errorf("error %q lacks position info", err)
	} else {
		_ = se
	}
}

func TestFacadeFiguresMatch(t *testing.T) {
	machine := matchmaking.MustParse(matchmaking.Figure1Source)
	job := matchmaking.MustParse(matchmaking.Figure2Source)
	res := matchmaking.Match(job, machine)
	if !res.Matched {
		t.Fatal("paper figures must match through the facade")
	}
	if !matchmaking.EvalConstraint(job, machine, nil) {
		t.Error("EvalConstraint disagrees with Match")
	}
	if r := matchmaking.EvalRank(machine, job, nil); r != 10 {
		t.Errorf("machine rank of job = %v", r)
	}
}

func TestFacadeMatchmaker(t *testing.T) {
	mm := matchmaking.NewMatchmaker(matchmaking.MatchmakerConfig{FairShare: true})
	machine := matchmaking.MustParse(matchmaking.Figure1Source)
	job := matchmaking.MustParse(matchmaking.Figure2Source)
	matches := mm.Negotiate([]*matchmaking.Ad{job}, []*matchmaking.Ad{machine})
	if len(matches) != 1 {
		t.Fatalf("negotiate found %d matches", len(matches))
	}
	if matches[0].OfferRank != 10 {
		t.Errorf("offer rank = %v", matches[0].OfferRank)
	}
}

func TestFacadeAnalyze(t *testing.T) {
	pool := []*matchmaking.Ad{matchmaking.MustParse(matchmaking.Figure1Source)}
	req := matchmaking.MustParse(`[
		Owner = "u";
		Constraint = other.Arch == "VAX";
	]`)
	a := matchmaking.Analyze(req, pool, nil)
	if !a.Unsatisfiable {
		t.Error("VAX requirement should be unsatisfiable")
	}
	if !strings.Contains(a.String(), "unsatisfiable") {
		t.Errorf("report: %s", a)
	}
}

func TestFacadeGang(t *testing.T) {
	pool := []*matchmaking.Ad{
		matchmaking.MustParse(`[ Type = "Machine"; Name = "m"; Arch = "INTEL" ]`),
		matchmaking.MustParse(`[ Type = "TapeDrive"; Name = "t"; TransferRate = 10 ]`),
	}
	gang := matchmaking.MustParse(`[
		Owner = "u";
		Gang = {
			[ Constraint = other.Type == "Machine" ],
			[ Constraint = other.Type == "TapeDrive" ]
		};
	]`)
	gm, ok := matchmaking.MatchGang(gang, pool, nil)
	if !ok || len(gm.Offers) != 2 {
		t.Fatalf("gang match failed: ok=%v %+v", ok, gm)
	}
}

func TestFacadeAgentsInProcess(t *testing.T) {
	env := matchmaking.FixedEnv(1000, 1)
	machineAd := matchmaking.MustParse(matchmaking.Figure1Source)
	ra := matchmaking.NewResource(machineAd, env)
	ca := matchmaking.NewCustomer("raman", env)
	job := ca.Submit(matchmaking.MustParse(matchmaking.Figure2Source), 50)

	ad, err := ra.Advertise()
	if err != nil {
		t.Fatal(err)
	}
	ticket, _ := ad.Eval(matchmaking.AttrTicket).StringVal()
	requests := ca.IdleRequests()
	if len(requests) != 1 {
		t.Fatalf("idle requests = %d", len(requests))
	}
	out := ra.RequestClaim(requests[0], ticket)
	if !out.Accepted {
		t.Fatalf("claim rejected: %s", out.Reason)
	}
	if err := ca.MarkRunning(job.ID, "leonardo.cs.wisc.edu"); err != nil {
		t.Fatal(err)
	}
	if done, _ := ca.Progress(job.ID, 50, false); !done {
		t.Error("job should complete")
	}
	if err := ra.Release("raman"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePoolOverTCP(t *testing.T) {
	mgr := matchmaking.NewManager(matchmaking.ManagerConfig{})
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	machineAd := matchmaking.MustParse(matchmaking.Figure1Source)
	machineAd.SetInt("DayTime", 22*3600)
	ra := matchmaking.NewResourceDaemon(matchmaking.NewResource(machineAd, nil), addr, 0, t.Logf)
	if _, err := ra.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	ca := matchmaking.NewCustomerDaemon(matchmaking.NewCustomer("raman", nil), addr, 0, t.Logf)
	if _, err := ca.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer ca.Close()

	ca.CA.Submit(matchmaking.MustParse(matchmaking.Figure2Source), 10)
	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	res := mgr.RunCycle()
	if res.Notified != 1 {
		t.Fatalf("cycle: %+v (errors %v)", res, res.Errors)
	}
	if _, ok := ra.RA.CurrentClaim(); !ok {
		t.Error("claim not established through the facade daemons")
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg := matchmaking.SimConfig{
		Pool:     matchmaking.PoolSpec{Machines: 5, DesktopFraction: 0, Classes: 1},
		Workload: matchmaking.JobSpec{Jobs: 10, MeanRuntime: 600},
		Seed:     1,
		Duration: 86400,
	}
	m := matchmaking.NewSimulation(cfg).Run()
	if m.Completed != 10 {
		t.Errorf("completed = %d", m.Completed)
	}
	// The baseline schedulers are reachable through the facade too.
	s := matchmaking.NewSimulation(cfg)
	cfg.Scheduler = matchmaking.NewQueueScheduler(s.Env())
	if matchmaking.NewSimulation(cfg).Run().Completed != 10 {
		t.Error("queue baseline failed the trivial pool")
	}
	cfg.Scheduler = matchmaking.NewIntrusiveQueueScheduler(matchmaking.NewSimulation(cfg).Env())
	if matchmaking.NewSimulation(cfg).Run().Completed != 10 {
		t.Error("intrusive baseline failed the trivial pool")
	}
}

func TestFacadeStoreAndQuery(t *testing.T) {
	store := matchmaking.NewStore(nil)
	if err := store.Update(matchmaking.MustParse(matchmaking.Figure1Source), 0); err != nil {
		t.Fatal(err)
	}
	q := matchmaking.MustParse(`[ Constraint = other.Memory >= 32 ]`)
	if got := store.Query(q); len(got) != 1 {
		t.Errorf("query = %d ads", len(got))
	}
	if !matchmaking.MatchesQuery(q, matchmaking.MustParse(matchmaking.Figure1Source), nil) {
		t.Error("MatchesQuery disagrees with store query")
	}
}

func TestFacadeBestOffer(t *testing.T) {
	offers := []*matchmaking.Ad{
		matchmaking.MustParse(`[ Type="Machine"; Name="slow"; Arch="INTEL"; Mips=50; Memory=64 ]`),
		matchmaking.MustParse(`[ Type="Machine"; Name="fast"; Arch="INTEL"; Mips=500; Memory=64 ]`),
	}
	req := matchmaking.MustParse(`[
		Owner="u"; Constraint = other.Arch == "INTEL"; Rank = other.Mips;
	]`)
	idx, pair := matchmaking.BestOffer(req, offers, nil)
	if idx != 1 || pair.RequestRank != 500 {
		t.Errorf("best offer = %d rank %v", idx, pair.RequestRank)
	}
}
