// Quickstart: parse the paper's two example classads, evaluate
// expressions against them, and run the bilateral match — the whole
// core of the framework in one screen of code.
package main

import (
	"fmt"
	"log"

	matchmaking "repro"
)

func main() {
	// The workstation ad of the paper's Figure 1 and the job ad of
	// Figure 2 ship with the library.
	machine := matchmaking.MustParse(matchmaking.Figure1Source)
	job := matchmaking.MustParse(matchmaking.Figure2Source)

	fmt.Println("The machine ad (Figure 1):")
	fmt.Println(machine.Pretty())
	fmt.Println()

	// Classads are queryable: evaluate any expression against one.
	for _, expr := range []string{
		"Memory * 1024",
		`member("raman", ResearchGroup)`,
		"KFlops / 1E3",
		"NoSuchAttribute",          // missing attributes are undefined,
		"NoSuchAttribute >= 32",    // and comparisons with them too:
		"Mips >= 10 || Kflops < 1", // but || only needs one defined true
	} {
		v, err := matchmaking.EvalString(expr, machine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s = %v  (%s)\n", expr, v, v.Type())
	}
	fmt.Println()

	// The bilateral match: both Constraints must be true; Rank
	// expresses each side's preference (paper §3.2).
	res := matchmaking.Match(job, machine)
	fmt.Printf("job and machine match: %v\n", res.Matched)
	fmt.Printf("  job's rank of the machine:  %.3f  (KFlops/1E3 + other.Memory/32)\n", res.LeftRank)
	fmt.Printf("  machine's rank of the job:  %.0f  (research group membership)\n", res.RightRank)
	fmt.Println()

	// Owner policies are just expressions, so "what if" questions
	// are cheap: the same job from an untrusted user never matches.
	intruder := job.Copy()
	intruder.SetString("Owner", "riffraff")
	fmt.Printf("riffraff's identical job matches: %v\n",
		matchmaking.Match(intruder, machine).Matched)

	// And a stranger's job matches only at night.
	stranger := job.Copy()
	stranger.SetString("Owner", "alice")
	for _, hour := range []int64{10, 23} {
		m := machine.Copy()
		m.SetInt("DayTime", hour*3600)
		fmt.Printf("alice's job at %02d:00 matches:        %v\n",
			hour, matchmaking.Match(stranger, m).Matched)
	}
}
