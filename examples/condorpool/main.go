// Condorpool: the paper's Figure 3 running live over loopback TCP —
// a pool manager, three resource-owner agents with distinct owner
// policies, and two customer agents, exchanging real protocol
// messages: advertise → negotiate → match-notify → claim → run →
// release, plus one priority preemption.
package main

import (
	"fmt"
	"log"
	"time"

	matchmaking "repro"
)

func main() {
	log.SetFlags(0)

	// The pool manager: collector + negotiator, stateless about
	// matches.
	mgr := matchmaking.NewManager(matchmaking.ManagerConfig{})
	poolAddr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	fmt.Printf("pool manager listening on %s\n\n", poolAddr)

	// Three workstations. leonardo is the paper's Figure 1 machine
	// (made night-time idle so strangers qualify); the other two are
	// dedicated nodes with trivial policies but different sizes.
	leonardoAd := matchmaking.MustParse(matchmaking.Figure1Source)
	leonardoAd.SetInt("DayTime", 22*3600)
	leonardoAd.SetInt("KeyboardIdle", 3600)
	leonardoAd.SetReal("LoadAvg", 0.02)
	smallAd := matchmaking.MustParse(`[
		Type = "Machine"; Name = "small.pool.example"; Arch = "INTEL";
		OpSys = "SOLARIS251"; Memory = 32; Disk = 500000; Mips = 60; KFlops = 9000;
	]`)
	bigAd := matchmaking.MustParse(`[
		Type = "Machine"; Name = "big.pool.example"; Arch = "INTEL";
		OpSys = "SOLARIS251"; Memory = 256; Disk = 900000; Mips = 200; KFlops = 40000;
		Rank = other.Memory;  // prefers jobs that use its size
	]`)

	var ras []*matchmaking.ResourceDaemon
	for _, ad := range []*matchmaking.Ad{leonardoAd, smallAd, bigAd} {
		ra := matchmaking.NewResourceDaemon(matchmaking.NewResource(ad, nil), poolAddr, 0, nil)
		contact, err := ra.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ra.Close()
		fmt.Printf("RA %-24s claims at %s\n", ra.RA.Name(), contact)
		ras = append(ras, ra)
	}

	// Two customers: raman (research group on leonardo) and a
	// stranger, alice.
	raman := matchmaking.NewCustomerDaemon(matchmaking.NewCustomer("raman", nil), poolAddr, 0, nil)
	alice := matchmaking.NewCustomerDaemon(matchmaking.NewCustomer("alice", nil), poolAddr, 0, nil)
	for _, ca := range []*matchmaking.CustomerDaemon{raman, alice} {
		contact, err := ca.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ca.Close()
		fmt.Printf("CA %-24s notified at %s\n", ca.CA.Owner(), contact)
	}
	fmt.Println()

	// raman submits the paper's Figure 2 job; alice submits two
	// memory-hungry jobs that prefer fast machines.
	ramanJob := raman.CA.Submit(matchmaking.MustParse(matchmaking.Figure2Source), 100)
	aliceAd := matchmaking.MustParse(`[
		Type = "Job"; Cmd = "render";
		Memory = 200;
		Rank = other.Mips;
		Constraint = other.Type == "Machine" && other.Memory >= self.Memory;
	]`)
	aliceJob := alice.CA.Submit(aliceAd, 100)
	smallJobAd := matchmaking.MustParse(`[
		Type = "Job"; Cmd = "count";
		Memory = 16;
		Constraint = other.Type == "Machine" && other.Memory >= self.Memory;
	]`)
	aliceJob2 := alice.CA.Submit(smallJobAd, 100)
	fmt.Printf("submitted: raman/job%d (Figure 2), alice/job%d (200MB), alice/job%d (16MB)\n\n",
		ramanJob.ID, aliceJob.ID, aliceJob2.ID)

	// Step 1: everyone advertises.
	for _, ra := range ras {
		if err := ra.Advertise(); err != nil {
			log.Fatal(err)
		}
	}
	for _, ca := range []*matchmaking.CustomerDaemon{raman, alice} {
		if err := ca.AdvertiseIdle(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("collector holds %d ads\n", mgr.Store().Len())

	// Steps 2-4: one negotiation cycle matches, notifies, and the
	// CAs claim.
	res := mgr.RunCycle()
	fmt.Printf("negotiation cycle: %d requests x %d offers -> %d matches, %d claims driven\n\n",
		res.Requests, res.Offers, len(res.Matches), res.Notified)
	time.Sleep(50 * time.Millisecond) // let claim goroutines settle

	for _, ra := range ras {
		if claim, ok := ra.RA.CurrentClaim(); ok {
			fmt.Printf("  %-24s claimed by %s (rank %g)\n", ra.RA.Name(), claim.Customer, claim.Rank)
		} else {
			fmt.Printf("  %-24s unclaimed\n", ra.RA.Name())
		}
	}
	fmt.Println()

	// Completion: raman's job finishes and releases leonardo; the RA
	// re-advertises as Unclaimed.
	if err := raman.Complete(ramanJob.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("raman's job completed; claim released")
	for _, ra := range ras {
		fmt.Printf("  %-24s state %s\n", ra.RA.Name(), ra.RA.State())
	}
}
