// Heterogeneous: the dimensions of the paper that conventional queue
// systems cannot express — dissimilar resource kinds (workstations,
// tape drives, software licenses) matched by one general mechanism,
// co-allocation via nested ads (gangmatching), match-failure
// diagnosis, and the quantitative matchmaker-vs-queues comparison.
package main

import (
	"fmt"

	matchmaking "repro"
)

func main() {
	// --- One mechanism, many resource kinds (paper §1) ---
	pool := []*matchmaking.Ad{
		matchmaking.MustParse(`[
			Type = "Machine"; Name = "ws1"; Arch = "INTEL"; OpSys = "SOLARIS251";
			Memory = 128; Disk = 800000; Mips = 150; KFlops = 30000;
		]`),
		matchmaking.MustParse(`[
			Type = "Machine"; Name = "ws2"; Arch = "SPARC"; OpSys = "SOLARIS251";
			Memory = 64; Disk = 400000; Mips = 90; KFlops = 15000;
		]`),
		matchmaking.MustParse(`[
			Type = "TapeDrive"; Name = "tape0"; TransferRate = 12;
			Constraint = other.EstimatedTapeHours <= 4;  // owner limits hogging
		]`),
		matchmaking.MustParse(`[
			Type = "License"; Name = "matlab-7"; Product = "matlab"; Seats = 3;
			Constraint = member(other.Owner, {"astro", "chem"});  // licensed groups only
		]`),
	}

	license := matchmaking.MustParse(`[
		Type = "Job"; Owner = "astro"; Cmd = "matlab-batch";
		Constraint = other.Type == "License" && other.Product == "matlab";
	]`)
	idx, pair := matchmaking.BestOffer(license, pool, nil)
	name, _ := pool[idx].Eval("Name").StringVal()
	fmt.Printf("license request matched %q (rank %g)\n", name, pair.RequestRank)

	outsider := license.Copy()
	outsider.SetString("Owner", "bio")
	if i, _ := matchmaking.BestOffer(outsider, pool, nil); i == -1 {
		fmt.Println("bio's identical request rejected: not in the licensed groups")
	}
	fmt.Println()

	// --- Co-allocation via nested ads (paper §3.1) ---
	gang := matchmaking.MustParse(`[
		Type = "Job"; Owner = "astro"; Cmd = "sky-survey";
		Gang = {
			[ Constraint = other.Type == "Machine" && other.Memory >= 96;
			  Rank = other.Mips ],
			[ Constraint = other.Type == "TapeDrive" && other.TransferRate >= 10;
			  EstimatedTapeHours = 3 ]
		};
	]`)
	if gm, ok := matchmaking.MatchGang(gang, pool, nil); ok {
		fmt.Println("gang request co-allocated:")
		for i, oi := range gm.Offers {
			n, _ := pool[oi].Eval("Name").StringVal()
			fmt.Printf("  slot %d -> %s\n", i, n)
		}
	} else {
		fmt.Println("gang request could not be co-allocated")
	}
	fmt.Println()

	// --- Why doesn't my job match? (paper §5 future work) ---
	impossible := matchmaking.MustParse(`[
		Type = "Job"; Owner = "chem";
		Constraint = other.Type == "Machine" && other.Arch == "ALPHA"
		          && other.Memory >= 32;
	]`)
	fmt.Print(matchmaking.Analyze(impossible, pool, nil))
	fmt.Println()

	// --- Matchmaker vs conventional queues (paper §2) ---
	fmt.Println("matchmaker vs queue scheduler, half-desktop pool, saturated:")
	cfg := matchmaking.SimConfig{
		Pool: matchmaking.PoolSpec{
			Machines:        30,
			DesktopFraction: 0.5,
			MeanOwnerActive: 3600,
			MeanOwnerIdle:   7200,
			Classes:         1,
		},
		Workload: matchmaking.JobSpec{
			Jobs: 400, MeanRuntime: 3600,
			Users: []string{"astro", "bio", "chem"},
		},
		Seed:     17,
		Duration: 86400,
	}
	mm := matchmaking.NewSimulation(cfg).Run()
	qcfg := cfg
	s := matchmaking.NewSimulation(qcfg)
	qcfg.Scheduler = matchmaking.NewQueueScheduler(s.Env())
	qs := matchmaking.NewSimulation(qcfg).Run()
	fmt.Printf("  %s\n  %s\n", mm, qs)
	fmt.Printf("  goodput ratio: %.2fx — the margin is the harvested desktop capacity\n",
		mm.Goodput()/qs.Goodput())
}
