// Remotesyscalls: the execution substrate behind Figure 2's
// WantRemoteSyscalls and WantCheckpoint attributes, wired into the
// matchmaking flow. A job is matched to a workstation and runs there
// under a *starter*, doing all of its I/O through remote syscalls to a
// *shadow* at the customer's site. The owner comes back, the job is
// evicted, the next negotiation cycle matches it to a different
// machine, and it resumes from its last checkpoint — producing output
// byte-identical to an uninterrupted run. The borrowed machines never
// hold any job state.
package main

import (
	"bytes"
	"fmt"
	"log"

	matchmaking "repro"
	"repro/internal/remote"
)

func main() {
	env := matchmaking.FixedEnv(0, 1)

	// Two workstations with owner policies; the paper's Figure 1
	// machine and a second, slower one.
	ws1 := matchmaking.NewResource(nightIdleMachine("leonardo.cs.wisc.edu"), env)
	ws2 := matchmaking.NewResource(nightIdleMachine("donatello.cs.wisc.edu"), env)

	// The customer's shadow: its files and checkpoints live here.
	store := remote.NewFileStore()
	input := bytes.Repeat([]byte("matchmaking is an introduction, not an allocation. "), 40)
	store.Put("sim.input", input)
	shadow := remote.NewShadow(store, nil)
	shadowAddr, err := shadow.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer shadow.Close()
	fmt.Printf("shadow serving %q at %s\n", "sim.input", shadowAddr)

	job := matchmaking.MustParse(matchmaking.Figure2Source)
	spec := remote.JobSpec{
		Key: "raman/sim2", Input: "sim.input", Output: "sim.output",
		ChunkSize: 64, CheckpointEvery: 4,
	}

	mm := matchmaking.NewMatchmaker(matchmaking.MatchmakerConfig{Env: env})
	session := 0
	for {
		session++
		// One negotiation cycle over the currently idle machines.
		var offers []*matchmaking.Ad
		tickets := map[*matchmaking.Ad]*matchmaking.Resource{}
		for _, ws := range []*matchmaking.Resource{ws1, ws2} {
			if ws.State() == "Unclaimed" {
				ad, err := ws.Advertise()
				if err != nil {
					log.Fatal(err)
				}
				offers = append(offers, ad)
				tickets[ad] = ws
			}
		}
		matches := mm.Negotiate([]*matchmaking.Ad{job}, offers)
		if len(matches) == 0 {
			log.Fatal("no machine available")
		}
		offer := matches[0].Offer
		ws := tickets[offer]
		ticket, _ := offer.Eval(matchmaking.AttrTicket).StringVal()
		out := ws.RequestClaim(job, ticket)
		if !out.Accepted {
			log.Fatalf("claim rejected: %s", out.Reason)
		}
		name, _ := offer.Eval("Name").StringVal()
		fmt.Printf("session %d: matched and claimed %s\n", session, name)

		// The starter runs on the claimed machine, doing remote I/O.
		// In session 1 the owner comes back almost immediately.
		cancel := make(chan struct{})
		if session == 1 {
			close(cancel) // owner is already typing — instant eviction
		}
		res, err := remote.Run(shadowAddr, spec, cancel)
		if err != nil {
			log.Fatal(err)
		}
		if res.Done {
			fmt.Printf("session %d: completed (%d records this session, resumed from step %d)\n",
				session, res.Steps, res.ResumedFrom)
			if err := ws.Release("raman"); err != nil {
				log.Fatal(err)
			}
			break
		}
		// Evicted: the RA reclaims the machine, the job goes back to
		// the matchmaker.
		if _, ok := ws.Evict(); !ok {
			log.Fatal("evict failed")
		}
		fmt.Printf("session %d: evicted after %d records (checkpoint at step %d survives at the shadow)\n",
			session, res.Steps, res.ResumedFrom+res.Steps)
	}

	// Verify: the output matches an uninterrupted run exactly.
	got, _ := store.Get("sim.output")
	want := remote.ExpectedOutput(input, 64)
	fmt.Printf("\noutput: %d bytes, identical to uninterrupted run: %v\n",
		len(got), bytes.Equal(got, want))
	fmt.Println("the borrowed workstations held no job state at any point —")
	fmt.Println("files and checkpoints lived with the customer (paper §4).")
}

func nightIdleMachine(name string) *matchmaking.Ad {
	ad := matchmaking.MustParse(matchmaking.Figure1Source)
	ad.Set("Name", matchmaking.MustParseExpr(fmt.Sprintf("%q", name)))
	ad.SetInt("DayTime", 22*3600)
	ad.SetInt("KeyboardIdle", 3600)
	ad.SetReal("LoadAvg", 0.02)
	return ad
}
