// Opportunistic: the paper's motivating scenario (§1, §4) as a
// simulation — a pool of desktop workstations whose owners come and
// go, with the matchmaker harvesting idle cycles under the owners'
// policies. Jobs are evicted when owners return; checkpointing
// (Figure 2's WantCheckpoint) decides whether that work is lost.
package main

import (
	"fmt"

	matchmaking "repro"
)

func main() {
	fmt.Println("Opportunistic cycle harvesting on 40 desktop workstations")
	fmt.Println("(owners active ~1h at a time, away ~1.5h; policy: 15 min")
	fmt.Println(" keyboard idle and low load, exactly the paper's §1 example)")
	fmt.Println()

	base := matchmaking.SimConfig{
		Pool: matchmaking.PoolSpec{
			Machines:        40,
			DesktopFraction: 1.0,
			MeanOwnerActive: 3600,
			MeanOwnerIdle:   5400,
			Classes:         2,
		},
		Workload: matchmaking.JobSpec{
			Jobs:        300,
			MeanRuntime: 3600,
			Users:       []string{"astro", "bio", "chem"},
		},
		Seed:     7,
		Duration: 2 * 86400,
	}

	fmt.Printf("%-16s %10s %10s %12s %12s %8s\n",
		"workload", "completed", "evictions", "wasted cpu-s", "goodput/day", "util%")
	for _, checkpoint := range []bool{false, true} {
		cfg := base
		cfg.Workload.Checkpoint = checkpoint
		m := matchmaking.NewSimulation(cfg).Run()
		label := "plain"
		if checkpoint {
			label = "checkpointing"
		}
		fmt.Printf("%-16s %10d %10d %12.0f %12.0f %8.1f\n",
			label, m.Completed, m.Evictions, m.WastedWork, m.Goodput(),
			100*m.Utilization())
	}

	fmt.Println()
	fmt.Println("Every one of those cycles came from machines whose owners were")
	fmt.Println("away; no claim ever violated an owner policy: the RA re-verifies")
	fmt.Println("its constraint against current state before accepting (paper §3.2).")

	// Per-user accounting: fair share spread the pool across the
	// three users.
	cfg := base
	s := matchmaking.NewSimulation(cfg)
	s.Run()
	fmt.Println()
	fmt.Println("Per-user completions under fair share:")
	for _, c := range s.Customers() {
		done := 0
		for _, j := range c.Snapshot() {
			if string(j.Status) == "Completed" {
				done++
			}
		}
		fmt.Printf("  %-8s %4d of %d\n", c.Owner(), done, len(c.Snapshot()))
	}
}
