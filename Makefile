# Verification loop for the matchmaking reproduction.
#
#   make verify   vet + build + race-enabled tests (the PR gate)
#   make test     tier-1 check as ROADMAP.md defines it
#   make fuzz     short protocol fuzz run (FuzzReadEnvelope)
#   make ci       everything CI runs: verify + fuzz

GO ?= go
FUZZTIME ?= 15s

.PHONY: verify test build vet fuzz ci

verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

test:
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Wire-protocol fuzzing: Read/Write round-trips, oversized frames,
# malformed JSON. Continuous deep fuzzing raises FUZZTIME.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadEnvelope -fuzztime=$(FUZZTIME) ./internal/protocol

ci: verify fuzz
