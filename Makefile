# Verification loop for the matchmaking reproduction.
#
#   make verify   lint + vet + build + race-enabled tests (the PR gate)
#   make test     tier-1 check as ROADMAP.md defines it
#   make lint     repo-invariant analyzers + cadlint over shipped ads
#   make fuzz     short protocol fuzz run (FuzzReadEnvelope)
#   make bench    matchmaker/classad hot-path benchmarks -> BENCH_matchmaker.json
#   make ci       everything CI runs: verify + fuzz

GO ?= go
FUZZTIME ?= 15s
# The hot paths a matchmaker lives on: classad parse/eval/match and
# the negotiation-cycle variants.
BENCHPAT ?= Parse|Eval|Match|Unparse|Negotiation|Aggregation|FairShare|Analyze|ClaimRevalidation

.PHONY: verify test build vet lint fuzz bench ci

verify: lint
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# Static analysis beyond go vet: the custom invariant analyzers
# (tools/analyzers: nodial, obsguard, msgswitch) over every package,
# and the ClassAd linter over every ad we ship. The intentionally
# broken fixtures live under testdata/lint/ and
# tools/analyzers/testdata/, which neither command reaches.
lint:
	$(GO) run ./tools/analyzers/cmd ./...
	$(GO) run ./cmd/cadlint testdata/*.ad examples/ads/*.ad

test:
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Wire-protocol fuzzing: Read/Write round-trips, oversized frames,
# malformed JSON. Continuous deep fuzzing raises FUZZTIME.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadEnvelope -fuzztime=$(FUZZTIME) ./internal/protocol

# Benchmark the matchmaking hot paths and refresh the checked-in
# baseline. benchjson compiles under `make verify` (go build ./...),
# so the pipeline can never rot silently.
bench:
	$(GO) test -run='^$$' -bench='$(BENCHPAT)' -benchmem . | $(GO) run ./tools/benchjson > BENCH_matchmaker.json
	@echo "wrote BENCH_matchmaker.json"

ci: verify fuzz
