# Verification loop for the matchmaking reproduction.
#
#   make verify       lint + vet + build + race-enabled shuffled tests (the PR gate)
#   make test         tier-1 check as ROADMAP.md defines it
#   make test-short   the fast loop: -short skips chaos/simulation soak tests
#   make lint         go vet + repo-invariant analyzers + cadlint over shipped ads + lint-codes
#   make lint-codes   DESIGN.md CAD/MC-code/analyzer tables must match the analyzer/checker source
#   make lint-fix-list machine-readable analyzer findings: file:line: code
#   make mc-short     exhaustive model check of the canonical small pool (the verify-depth run)
#   make mc           deeper model check (MC_FULL=1), plus liveness and mutant self-tests
#   make fuzz         short protocol fuzz run (FuzzReadEnvelope)
#   make crash        durability soak: crash-point matrices + randomized fault soak
#   make bench        matchmaker/classad hot-path benchmarks -> BENCH_matchmaker.json
#   make bench-check  rerun the benchmarks and fail on >20% ns/op regression
#   make ci           everything CI runs: verify + fuzz

GO ?= go
FUZZTIME ?= 15s
# The hot paths a matchmaker lives on: classad parse/eval/match and
# the negotiation-cycle variants (Negotiat covers both the Negotiation*
# cycle benchmarks and the Negotiate* index/scan benchmarks;
# SteadyState is the event-driven delta wake vs full-rebuild pair).
BENCHPAT ?= Parse|Eval|Match|Unparse|Negotiat|Aggregation|FairShare|Analyze|ClaimRevalidation|SteadyState

.PHONY: verify test test-short build vet lint lint-codes lint-fix-list mc mc-short fuzz crash bench bench-check ci

verify: lint mc-short
	$(GO) build ./...
	$(GO) test -race -shuffle=on ./...

# All static analysis in one target: go vet, the custom invariant
# analyzers (tools/analyzers, typed framework v2: nodial, obsguard,
# msgswitch, lockguard, fsyncguard, tracectx, epochguard, replyguard,
# condguard, determguard, goroguard, sendguard) over every package, the
# ClassAd linter over every ad we ship, and the docs/code sync gate.
# The analyzer driver prints a per-analyzer timing summary and fails
# past its 30s budget. The intentionally broken fixtures live under
# testdata/lint/ and tools/analyzers/testdata/, which none of these
# reach.
lint: lint-codes
	$(GO) vet ./...
	$(GO) run ./tools/analyzers/cmd ./...
	$(GO) run ./cmd/cadlint testdata/*.ad examples/ads/*.ad

# Machine-readable findings for editor/script consumption: one
# `file:line: analyzer` per violation, nothing else.
lint-fix-list:
	$(GO) run ./tools/analyzers/cmd -list ./...

# The DESIGN.md tables are written by hand but enforced by machine:
# these tests re-derive the diagnostic-code vocabulary (§9), the
# analyzer roster (§9), the metrics-name registry (§12), and the
# model-checker invariant codes (§13) from package source and fail on
# any drift against the doc tables.
lint-codes:
	$(GO) test -run 'TestAllCodesMatchesSource|TestDesignDocCodeTableInSync' ./internal/classad/analysis
	$(GO) test -run 'TestDesignDocMetricsTableInSync' ./internal/obs
	$(GO) test -run 'TestAllMCCodesMatchesSource|TestDesignDocModelCheckTableInSync' ./internal/modelcheck
	$(GO) test -run 'TestDesignDocAnalyzerTableInSync' ./tools/analyzers

# Exhaustive small-scope model check of the canonical pool (2 machines,
# 2 jobs, 2 negotiators): the checker owns every source of
# nondeterminism, so a green run means no reachable interleaving within
# the depth bound violates MC101-MC105. -v surfaces the
# explored-schedule and distinct-state counts. mc-short is the verify
# gate; mc sets MC_FULL=1 for the deeper bound and adds the liveness
# and seeded-mutant self-tests.
mc-short:
	$(GO) test -run 'TestExhaustiveSmallPoolInvariants' -v ./internal/modelcheck | grep -v '^=== RUN'

mc:
	MC_FULL=1 $(GO) test -count=1 -v ./internal/modelcheck | grep -v '^=== RUN'

test:
	$(GO) build ./...
	$(GO) test ./...

# The inner development loop: everything but the chaos suite, the
# simulation soaks, and the long randomized-property runs.
test-short:
	$(GO) test -short ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Durability soak: every crash-point matrix (kill the process at the
# k-th filesystem operation, for every k) plus the randomized
# crash/fault soak that `go test -short` skips, all under the race
# detector — the recovery path is the one place a data race and a
# torn write can conspire.
crash:
	$(GO) test -race -count=1 -run 'TestCrash|TestDurableStoreCrashPoints|TestUsageLedgerCrashPoints' \
		./internal/store ./internal/collector ./internal/matchmaker

# Wire-protocol fuzzing: Read/Write round-trips, oversized frames,
# malformed JSON. Continuous deep fuzzing raises FUZZTIME.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadEnvelope -fuzztime=$(FUZZTIME) ./internal/protocol

# Benchmark the matchmaking hot paths and refresh the checked-in
# baseline. benchjson compiles under `make verify` (go build ./...),
# so the pipeline can never rot silently.
bench:
	$(GO) test -run='^$$' -bench='$(BENCHPAT)' -benchmem . | $(GO) run ./tools/benchjson > BENCH_matchmaker.json
	@echo "wrote BENCH_matchmaker.json"

# Regression gate: rerun the same benchmarks and compare ns/op against
# the committed baseline; exits non-zero past 20% slowdown (refresh
# the baseline via `make bench` when a slowdown is intentional).
# -count=2 with benchjson's min-of-N keeps scheduler noise on shared
# hardware from flagging phantom regressions: a slowdown must
# reproduce in both samples to fail the gate.
bench-check:
	$(GO) test -run='^$$' -bench='$(BENCHPAT)' -benchmem -count=2 . | $(GO) run ./tools/benchjson -check BENCH_matchmaker.json

ci: verify fuzz
