// Benchmark harness: one benchmark (or benchmark family) per
// experiment row in DESIGN.md §4 / EXPERIMENTS.md. The pool-scale
// simulations behind E5/E7/E8 have full sweeps in cmd/csim; the
// benchmarks here measure their per-operation costs and the language
// micro-costs (E13), the negotiation cycle's scaling (E10), the
// aggregation ablation (E11), fair-share accounting (E9), and
// gangmatching (E14).
package matchmaking_test

import (
	"fmt"
	"testing"

	matchmaking "repro"
	"repro/internal/agent"
	"repro/internal/baseline"
	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/sim"
)

// ---- E13: language micro-costs ----

// BenchmarkParseFigure1 measures parsing the paper's workstation ad.
func BenchmarkParseFigure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := classad.Parse(classad.Figure1Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseFigure2 measures parsing the job ad.
func BenchmarkParseFigure2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := classad.Parse(classad.Figure2Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalConstraint measures one evaluation of the Figure 1
// owner policy against a job — the inner loop of every negotiation
// cycle.
func BenchmarkEvalConstraint(b *testing.B) {
	machine := classad.Figure1()
	job := classad.Figure2()
	env := classad.FixedEnv(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !classad.EvalConstraint(machine, job, env) {
			b.Fatal("figures must match")
		}
	}
}

// BenchmarkEvalRank measures Rank evaluation (arithmetic over both
// ads).
func BenchmarkEvalRank(b *testing.B) {
	machine := classad.Figure1()
	job := classad.Figure2()
	env := classad.FixedEnv(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if classad.EvalRank(job, machine, env) == 0 {
			b.Fatal("rank should be positive")
		}
	}
}

// BenchmarkMatch measures the full bilateral match of Figures 1 and 2.
func BenchmarkMatch(b *testing.B) {
	machine := classad.Figure1()
	job := classad.Figure2()
	env := classad.FixedEnv(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !classad.MatchEnv(job, machine, env).Matched {
			b.Fatal("figures must match")
		}
	}
}

// BenchmarkUnparse measures canonical ad rendering (the wire form).
func BenchmarkUnparse(b *testing.B) {
	machine := classad.Figure1()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if machine.String() == "" {
			b.Fatal("empty unparse")
		}
	}
}

// BenchmarkJSONRoundTrip measures the JSON wire mapping.
func BenchmarkJSONRoundTrip(b *testing.B) {
	machine := classad.Figure1()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := machine.MarshalJSON()
		if err != nil {
			b.Fatal(err)
		}
		var back classad.Ad
		if err := back.UnmarshalJSON(data); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E10: negotiation cycle scaling ----

func poolAds(n int, seed int64) []*classad.Ad {
	eng := sim.NewEngine(seed)
	machines := sim.BuildPool(sim.PoolSpec{
		Machines: n,
		ArchMix:  map[string]float64{"INTEL": 0.7, "SPARC": 0.3},
	}, eng, classad.FixedEnv(0, seed))
	out := make([]*classad.Ad, n)
	for i, m := range machines {
		ad, err := m.Res.Advertise()
		if err != nil {
			panic(err)
		}
		out[i] = ad
	}
	return out
}

func jobAds(n int, seed int64) []*classad.Ad {
	eng := sim.NewEngine(seed + 1)
	customers := sim.BuildWorkload(sim.JobSpec{
		Jobs:    n,
		Users:   []string{"u1", "u2", "u3", "u4"},
		ArchMix: map[string]float64{"INTEL": 0.7, "SPARC": 0.3},
	}, eng, classad.FixedEnv(0, seed))
	var out []*classad.Ad
	for _, c := range customers {
		out = append(out, c.IdleRequests()...)
	}
	return out
}

// BenchmarkNegotiationCycle measures one full cycle (rank-sorted
// candidate selection) at several pool sizes; each op matches
// N/2 requests against N offers.
func BenchmarkNegotiationCycle(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("machines=%d", n), func(b *testing.B) {
			offers := poolAds(n, 42)
			requests := jobAds(n/2, 42)
			mm := matchmaker.New(matchmaker.Config{Env: classad.FixedEnv(0, 1)})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(mm.Negotiate(requests, offers)) == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

// BenchmarkNegotiationFirstFit is the rank-selection ablation: taking
// the first compatible offer instead of the best-ranked one.
func BenchmarkNegotiationFirstFit(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("machines=%d", n), func(b *testing.B) {
			offers := poolAds(n, 42)
			requests := jobAds(n/2, 42)
			mm := matchmaker.New(matchmaker.Config{
				Env: classad.FixedEnv(0, 1), FirstFit: true,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(mm.Negotiate(requests, offers)) == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

// bigPool builds a heterogeneous offer set for the index benchmarks:
// four architectures crossed with eight memory tiers, so a typical
// arch+memory constraint selects roughly 1/8 of the pool.
func bigPool(n int) []*classad.Ad {
	archs := []string{"INTEL", "SPARC", "ALPHA", "HPPA"}
	out := make([]*classad.Ad, n)
	for i := range out {
		ad := classad.NewAd()
		ad.SetString("Type", "Machine")
		ad.SetString("Name", fmt.Sprintf("m%d", i))
		ad.SetString("Arch", archs[i%len(archs)])
		ad.SetInt("Memory", int64(32*(1+i%8)))
		ad.SetInt("Mips", int64(10+i%90))
		if err := ad.SetExprString("Constraint", "other.Memory <= Memory"); err != nil {
			panic(err)
		}
		if err := ad.SetExprString("Rank", "other.Memory"); err != nil {
			panic(err)
		}
		out[i] = ad
	}
	return out
}

// bigRequests builds indexable requests against bigPool: an equality
// on Arch and a lower bound on Memory, plus a Rank so the scan cannot
// shortcut.
func bigRequests(n int) []*classad.Ad {
	archs := []string{"INTEL", "SPARC", "ALPHA", "HPPA"}
	out := make([]*classad.Ad, n)
	for i := range out {
		ad := classad.NewAd()
		ad.SetString("Type", "Job")
		ad.SetString("Owner", fmt.Sprintf("u%d", i%4))
		ad.SetInt("Memory", int64(16+i%32))
		if err := ad.SetExprString("Constraint", fmt.Sprintf(
			`other.Arch == %q && other.Memory >= %d`,
			archs[i%len(archs)], 32*(5+i%4))); err != nil {
			panic(err)
		}
		if err := ad.SetExprString("Rank", "other.Mips"); err != nil {
			panic(err)
		}
		out[i] = ad
	}
	return out
}

// BenchmarkNegotiate10kOffers is the two-stage engine's headline
// number: one cycle of 32 requests against 10k offers, sequential
// scan versus the offer index. The indexed run prunes each request's
// scan to the posting-list intersection, so the speedup tracks the
// candidate fraction (~1/8 here).
func BenchmarkNegotiate10kOffers(b *testing.B) {
	offers := bigPool(10000)
	requests := bigRequests(32)
	env := classad.FixedEnv(0, 1)
	for _, mode := range []struct {
		name string
		cfg  matchmaker.Config
	}{
		{"sequential", matchmaker.Config{Env: env}},
		{"indexed", matchmaker.Config{Env: env, Index: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			mm := matchmaker.New(mode.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(mm.Negotiate(requests, offers)) == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

// BenchmarkNegotiateIndexed tracks the indexed engine across pool
// sizes — the bench-check regression gate's guard on the two-stage
// path itself.
func BenchmarkNegotiateIndexed(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("machines=%d", n), func(b *testing.B) {
			offers := bigPool(n)
			requests := bigRequests(32)
			mm := matchmaker.New(matchmaker.Config{
				Env: classad.FixedEnv(0, 1), Index: true,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(mm.Negotiate(requests, offers)) == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

// BenchmarkNegotiateTraced prices the causal-observability layer on
// the negotiation hot path: the same 32-request cycle against 1k
// offers, bare versus fully instrumented — span recording on
// trace-stamped requests plus the per-offer rejection forensics that
// back `cstatus -why`.
func BenchmarkNegotiateTraced(b *testing.B) {
	offers := bigPool(1000)
	requests := bigRequests(32)
	for _, req := range requests {
		req.SetString(classad.AttrTraceID, obs.NewTraceID())
	}
	for _, mode := range []struct {
		name       string
		instrument bool
	}{
		{"bare", false},
		{"instrumented", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			mm := matchmaker.New(matchmaker.Config{Env: classad.FixedEnv(0, 1)})
			if mode.instrument {
				mm.Instrument(obs.New())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(mm.NegotiateCycle("c-bench", requests, offers)) == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

// ---- E11: aggregation (group matching) ----

func regularPool(n, classes int) []*classad.Ad {
	out := make([]*classad.Ad, n)
	for i := range out {
		c := i % classes
		ad := classad.NewAd()
		ad.SetString("Type", "Machine")
		ad.SetString("Name", fmt.Sprintf("m%05d", i))
		ad.SetString("Arch", "INTEL")
		ad.SetString("OpSys", "SOLARIS251")
		ad.SetInt("Memory", int64(32*(c+1)))
		ad.SetInt("Mips", int64(100+c))
		out[i] = ad
	}
	return out
}

// BenchmarkAggregation measures a negotiation cycle over a
// value-regular pool with and without group matching, across
// regularity levels. The speedup is the class-count ratio.
func BenchmarkAggregation(b *testing.B) {
	const n = 1000
	requests := jobAds(50, 7)
	for _, classes := range []int{1, 16, 256} {
		offers := regularPool(n, classes)
		for _, agg := range []bool{false, true} {
			name := fmt.Sprintf("classes=%d/aggregate=%v", classes, agg)
			b.Run(name, func(b *testing.B) {
				mm := matchmaker.New(matchmaker.Config{
					Env: classad.FixedEnv(0, 1), Aggregate: agg,
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mm.Negotiate(requests, offers)
				}
			})
		}
	}
}

// BenchmarkAggregationBatch measures the two-sided win: a batch of
// identical jobs against a value-regular pool. Work drops from
// jobs × offers evaluations to (request classes) × (offer classes).
func BenchmarkAggregationBatch(b *testing.B) {
	offers := regularPool(1000, 4)
	var requests []*classad.Ad
	for i := 0; i < 200; i++ {
		r := classad.NewAd()
		r.SetString("Type", "Job")
		r.SetString("Owner", "u")
		r.SetInt("JobId", int64(i+1))
		r.SetInt("Memory", 32)
		if err := r.SetExprString("Constraint",
			`other.Arch == "INTEL" && other.Memory >= self.Memory`); err != nil {
			b.Fatal(err)
		}
		if err := r.SetExprString("Rank", "other.Memory"); err != nil {
			b.Fatal(err)
		}
		requests = append(requests, r)
	}
	for _, aggOn := range []bool{false, true} {
		b.Run(fmt.Sprintf("aggregate=%v", aggOn), func(b *testing.B) {
			mm := matchmaker.New(matchmaker.Config{
				Env: classad.FixedEnv(0, 1), Aggregate: aggOn,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(mm.Negotiate(requests, offers)) != 200 {
					b.Fatal("wrong match count")
				}
			}
		})
	}
}

// ---- E9: fair share ----

// BenchmarkFairShare measures a contended cycle with usage-ordered
// customers (accounting included).
func BenchmarkFairShare(b *testing.B) {
	offers := poolAds(100, 3)
	requests := jobAds(200, 3)
	for _, fair := range []bool{false, true} {
		b.Run(fmt.Sprintf("fairshare=%v", fair), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A fresh matchmaker per iteration: fair-share
				// ordering depends on accumulated usage, so reusing
				// one instance would make each iteration's work a
				// function of b.N and the ns/op unstable run-to-run.
				mm := matchmaker.New(matchmaker.Config{
					Env: classad.FixedEnv(0, 1), FairShare: fair,
				})
				mm.Negotiate(requests, offers)
			}
		})
	}
}

// ---- E14: gangmatching ----

// BenchmarkGangMatch measures co-allocating a two-resource gang out of
// a mixed pool.
func BenchmarkGangMatch(b *testing.B) {
	offers := poolAds(200, 5)
	for i := 0; i < 10; i++ {
		tape := classad.NewAd()
		tape.SetString("Type", "TapeDrive")
		tape.SetString("Name", fmt.Sprintf("tape%d", i))
		tape.SetInt("TransferRate", int64(5+i))
		offers = append(offers, tape)
	}
	gang := classad.MustParse(`[
		Type = "Job"; Owner = "u";
		Gang = {
			[ Constraint = other.Type == "Machine" && other.Arch == "INTEL";
			  Rank = other.Mips ],
			[ Constraint = other.Type == "TapeDrive" && other.TransferRate >= 8 ]
		};
	]`)
	env := classad.FixedEnv(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := matchmaker.MatchGang(gang, offers, env); !ok {
			b.Fatal("gang should match")
		}
	}
}

// ---- E12: analyzer ----

// BenchmarkAnalyze measures a full clause-by-clause diagnosis against
// a 1000-machine pool.
func BenchmarkAnalyze(b *testing.B) {
	offers := poolAds(1000, 9)
	req := classad.MustParse(`[
		Owner = "u";
		Constraint = other.Type == "Machine" && other.Arch == "ALPHA"
		          && other.Memory >= 64 && other.Mips >= 100;
	]`)
	env := classad.FixedEnv(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := matchmaker.Analyze(req, offers, env)
		if !a.Unsatisfiable {
			b.Fatal("ALPHA clause should be unsatisfiable")
		}
	}
}

// ---- E5: claim-time re-validation cost ----

// BenchmarkClaimRevalidation measures the RA-side claim check — ticket
// comparison plus bilateral constraint re-evaluation against current
// state — that the weak-consistency design adds to every allocation.
func BenchmarkClaimRevalidation(b *testing.B) {
	env := classad.FixedEnv(1000, 1)
	base := classad.Figure1()
	job := classad.Figure2()
	ra := agent.NewResource(base, env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ad, err := ra.Advertise()
		if err != nil {
			b.Fatal(err)
		}
		ticket, _ := ad.Eval(classad.AttrTicket).StringVal()
		b.StartTimer()
		out := ra.RequestClaim(job, ticket)
		if !out.Accepted {
			b.Fatal(out.Reason)
		}
		b.StopTimer()
		if err := ra.Release("raman"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// ---- E7/E8: simulation step costs ----

// BenchmarkSimulationDay runs a complete one-day simulation of a
// 20-machine half-desktop pool per op, for both schedulers. The full
// parameter sweeps are in cmd/csim.
func BenchmarkSimulationDay(b *testing.B) {
	mkCfg := func() sim.Config {
		return sim.Config{
			Pool: sim.PoolSpec{Machines: 20, DesktopFraction: 0.5,
				MeanOwnerActive: 3600, MeanOwnerIdle: 7200, Classes: 1},
			Workload: sim.JobSpec{Jobs: 100, MeanRuntime: 3600,
				Users: []string{"u1", "u2"}},
			Seed:     5,
			Duration: 86400,
		}
	}
	b.Run("matchmaker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := sim.New(mkCfg()).Run()
			if m.Completed == 0 {
				b.Fatal("nothing completed")
			}
		}
	})
	b.Run("queues", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := mkCfg()
			s := sim.New(cfg)
			cfg.Scheduler = baseline.New(s.Env())
			m := sim.New(cfg).Run()
			if m.Completed == 0 {
				b.Fatal("nothing completed")
			}
		}
	})
}

// BenchmarkPartialEval measures rewriting the Figure 2 constraint to
// its residual form — the analyzer's per-clause cost.
func BenchmarkPartialEval(b *testing.B) {
	job := classad.Figure2()
	ce, _ := classad.ConstraintOf(job)
	env := classad.FixedEnv(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = classad.PartialEval(ce, job, env)
	}
}

// ---- protocol and execution-substrate costs ----

// BenchmarkAdvertiseOverTCP measures one advertising-protocol round
// trip (dial, ADVERTISE, ACK) against a live collector — the cost an
// RA pays per refresh.
func BenchmarkAdvertiseOverTCP(b *testing.B) {
	srv := collector.NewServer(collector.New(nil), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := &collector.Client{Addr: addr}
	ad := classad.Figure1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Advertise(ad, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryOverTCP measures a one-way query against a 100-ad
// collector, full ads returned.
func BenchmarkQueryOverTCP(b *testing.B) {
	store := collector.New(nil)
	for _, ad := range poolAds(100, 13) {
		if err := store.Update(ad, 0); err != nil {
			b.Fatal(err)
		}
	}
	srv := collector.NewServer(store, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := &collector.Client{Addr: addr}
	query := classad.MustParse(`[ Constraint = other.Memory >= 64 ]`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query(query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteSyscallStep measures one record of remote-syscall
// execution: a read, a write, and their framing — the per-step tax of
// keeping the execution site stateless.
func BenchmarkRemoteSyscallStep(b *testing.B) {
	fs := remote.NewFileStore()
	fs.Put("in", make([]byte, 1<<20))
	shadow := remote.NewShadow(fs, nil)
	addr, err := shadow.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer shadow.Close()
	c, err := remote.DialShadow(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	in, err := c.Open("in", "r")
	if err != nil {
		b.Fatal(err)
	}
	out, err := c.Open("out", "w")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%1000) * 64
		data, _, err := c.ReadAt(in, off, 64)
		if err != nil {
			b.Fatal(err)
		}
		copy(buf, data)
		if err := c.WriteAt(out, off, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRoundTrip measures saving and reloading a
// checkpoint at the shadow.
func BenchmarkCheckpointRoundTrip(b *testing.B) {
	shadow := remote.NewShadow(remote.NewFileStore(), nil)
	addr, err := shadow.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer shadow.Close()
	c, err := remote.DialShadow(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	state := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SaveCheckpoint("job", state); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := c.LoadCheckpoint("job"); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

// ---- facade sanity (keeps the public API exercised from outside) ----

// BenchmarkFacadeMatch goes through the public facade.
func BenchmarkFacadeMatch(b *testing.B) {
	machine := matchmaking.MustParse(matchmaking.Figure1Source)
	job := matchmaking.MustParse(matchmaking.Figure2Source)
	env := matchmaking.FixedEnv(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !matchmaking.MatchEnv(job, machine, env).Matched {
			b.Fatal("figures must match")
		}
	}
}

// ---- Event-driven steady state: delta wakes vs full rebuilds ----

// namedBigRequests is bigRequests plus the Name attribute the
// incremental engine keys requests by.
func namedBigRequests(n int) []*classad.Ad {
	out := bigRequests(n)
	for i, ad := range out {
		ad.SetString("Name", fmt.Sprintf("bench-j%d", i))
	}
	return out
}

// BenchmarkSteadyStateDeltas measures one steady-state wake at pool
// scale: 10k offers, 32 live requests, and 1% of the offers
// re-advertised with changed content between wakes. The incremental
// engine replays only what the churn touched; the full-rebuild pair is
// what timer mode pays for the same pool every period. The committed
// baseline pins the gap (>=10x less negotiation work per wake); the
// evals/wake metric is the engine's own bilateral-evaluation count.
func BenchmarkSteadyStateDeltas(b *testing.B) {
	const nOffers = 10000
	const nReqs = 32
	const churn = nOffers / 100 // 1% per wake
	env := classad.FixedEnv(0, 1)
	offers := bigPool(nOffers)
	requests := namedBigRequests(nReqs)

	// churned rebuilds offer i with a round-dependent Mips, so each
	// churn round really changes content (and rank landscape).
	churned := func(i, round int) *classad.Ad {
		ad := classad.MustParse(offers[i].String())
		ad.SetInt("Mips", int64(10+(i*7+round*13+1)%90))
		return ad
	}

	b.Run("incremental", func(b *testing.B) {
		eng := matchmaker.NewIncremental(matchmaker.New(matchmaker.Config{Env: env, Index: true}))
		for _, ad := range offers {
			name, _ := ad.Eval("Name").StringVal()
			eng.Notify(matchmaker.AdDelta{Kind: matchmaker.AdUpsert, Name: name, Ad: ad})
		}
		for _, ad := range requests {
			name, _ := ad.Eval("Name").StringVal()
			eng.Notify(matchmaker.AdDelta{Kind: matchmaker.AdUpsert, Name: name, Ad: ad})
		}
		if ms, _ := eng.Recompute("seed"); len(ms) == 0 {
			b.Fatal("no matches at seed")
		}
		var evals int
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			for k := 0; k < churn; k++ {
				i := (n*churn + k) % nOffers
				eng.Notify(matchmaker.AdDelta{Kind: matchmaker.AdUpsert,
					Name: fmt.Sprintf("m%d", i), Ad: churned(i, n)})
			}
			_, stats := eng.Recompute("wake")
			evals += stats.Evals
		}
		b.ReportMetric(float64(evals)/float64(b.N), "evals/wake")
	})

	b.Run("full-rebuild", func(b *testing.B) {
		mm := matchmaker.New(matchmaker.Config{Env: env, Index: true})
		work := append([]*classad.Ad(nil), offers...)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			for k := 0; k < churn; k++ {
				i := (n*churn + k) % nOffers
				work[i] = churned(i, n)
			}
			if len(mm.Negotiate(requests, work)) == 0 {
				b.Fatal("no matches")
			}
		}
	})
}
