// A dot import of os leaves no `os.` selector for a syntax matcher to
// key on — the old analyzer missed this spelling entirely. Object
// identity resolves the bare names back to package os.
package app

import . "os"

func dotPersist(b []byte) error {
	return WriteFile("state.json", b, 0o644) // want "os\\.WriteFile persists without fsync"
}

func dotSwap() error {
	return Rename("state.json.tmp", "state.json") // want "os\\.Rename persists without fsync"
}

func dotRead() ([]byte, error) {
	return ReadFile("state.json")
}
