// Package app seeds raw-persistence violations for the fsyncguard
// analyzer: os.WriteFile and os.Rename guarantee nothing across a
// crash and must not implement durability in internal/ packages.
package app

import "os"

func bad(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os\\.WriteFile persists without fsync"
}

func alsoBad(oldp, newp string) error {
	return os.Rename(oldp, newp) // want "os\\.Rename persists without fsync"
}

// An explicit waiver silences the finding.
func waived(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) //fsyncguard:ok scratch output, loss is acceptable
}

// Reading is not persistence.
func fine(path string) ([]byte, error) {
	return os.ReadFile(path)
}
