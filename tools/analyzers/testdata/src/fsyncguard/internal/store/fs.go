// The FS boundary file is exempt from the raw-persistence rule: it is
// where the store wraps exactly these primitives with sync discipline.
package store

import "os"

func rename(oldp, newp string) error { return os.Rename(oldp, newp) }
