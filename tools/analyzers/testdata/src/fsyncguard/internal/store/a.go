// Package store seeds unsynced-write violations for the fsyncguard
// analyzer's store-layer rule: inside internal/store, a function that
// writes must sync, because this layer owns the durability ritual.
package store

type file interface {
	Write([]byte) (int, error)
	Sync() error
}

func bad(f file, data []byte) error {
	_, err := f.Write(data) // want "write without a Sync in the same function"
	return err
}

func good(f file, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

//fsyncguard:ok delegating wrapper; the caller owns the sync
func waivedByDoc(f file, data []byte) (int, error) {
	return f.Write(data)
}

func waivedInline(f file, data []byte) {
	f.Write(data) //fsyncguard:ok torn-write injection, deliberately unsynced
}
