// Clean-by-scope file: OffReplay commits every nondeterminism sin the
// analyzer knows, but nothing on a modelcheck path calls it — the
// reachability gate, not luck, keeps it silent.
package app

import "time"

func OffReplay() int64 {
	time.Sleep(time.Millisecond)
	return time.Now().Unix()
}
