// Package app is replayed by the determguard fixture's driver:
// everything Step and Fingerprint reach executes under replay, so
// wall-clock reads, global rand draws, and order-escaping map ranges
// here de-sounden the checker's fingerprints. OffReplay is the
// negative control — same sins, not reachable, no findings.
package app

import (
	"math/rand"
	"sort"
	"time"
)

type World struct {
	clock int64
	seen  map[string]int64
	log   []string
}

func (w *World) Step(now int64) {
	w.clock = now
	if w.seen == nil {
		w.seen = map[string]int64{}
	}
	w.seen["stamp"] = time.Now().Unix() // want "time\\.Now in modelcheck-replayed code"
	if rand.Float64() < 0.5 {           // want "math/rand\\.Float64 in modelcheck-replayed code"
		w.clock++
	}
	w.jitter()
}

// jitter is reachable through Step: one more hop for the call graph.
func (w *World) jitter() {
	time.Sleep(time.Millisecond) // want "time\\.Sleep in modelcheck-replayed code"
}

// Fingerprint lets map iteration order escape into the state hash.
func (w *World) Fingerprint() string {
	out := ""
	for k, v := range w.seen { // want "map iteration order escapes this loop"
		out += k
		w.log = append(w.log, k)
		_ = v
	}
	return out
}

// SortedNames is the discharged shape: collect, then sort before use.
func (w *World) SortedNames() []string {
	names := make([]string, 0, len(w.seen))
	for k := range w.seen {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// WaivedStamp is checker-owned nondeterminism, documented in place.
func (w *World) WaivedStamp() int64 {
	if w.clock != 0 {
		return w.clock
	}
	return time.Now().Unix() //determguard:ok fallback outside replay; the driver always seeds the clock
}
