// Package modelcheck is the determguard fixture's replay driver: its
// path makes every function here a reachability root, and the
// violations it can reach live one package over, in internal/app —
// findable only through the cross-package call graph. This file
// itself is clean: the driver owns the virtual clock.
package modelcheck

import "repro/tools/analyzers/testdata/src/determguard/internal/app"

// Explore replays the component under a schedule the checker owns.
func Explore(steps int) string {
	w := &app.World{}
	for i := 0; i < steps; i++ {
		w.Step(int64(i))
	}
	_ = w.SortedNames()
	_ = w.WaivedStamp()
	return w.Fingerprint()
}
