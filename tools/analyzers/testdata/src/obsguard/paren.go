// A parenthesized receiver type is the same type to go/types but not
// to a syntax matcher expecting exactly `*ast.StarExpr{Ident}` — the
// old analyzer skipped these methods entirely. Typed receiver
// resolution sees (*Histogram).Peek and checks it like any other hook
// method.
package obs

type Histogram struct{ sum float64 }

func (h *(Histogram)) Peek() float64 { // want "\\(\\*Histogram\\)\\.Peek is not nil-receiver-safe"
	return h.sum
}

// Observe guards first: accepted, parens or not.
func (h *(Histogram)) Observe(v float64) {
	if h == nil {
		return
	}
	h.sum += v
}
