// Package obs mimics the real hook types to seed guard violations for
// the obsguard analyzer.
package obs

type Counter struct{ v int64 }

// Inc delegates to a guarded method: accepted.
func (c *Counter) Inc() { c.Add(1) }

// Add guards in the first statement: accepted.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v += n
}

// Value dereferences an unguarded receiver.
func (c *Counter) Value() int64 { // want "\\(\\*Counter\\)\\.Value is not nil-receiver-safe"
	return c.v
}

type Gauge struct{ v int64 }

// Set guards too late: the receiver is already dereferenced.
func (g *Gauge) Set(n int64) { // want "\\(\\*Gauge\\)\\.Set is not nil-receiver-safe"
	g.v = n
	if g == nil {
		return
	}
}

// Twice only ever uses the receiver as a method-call receiver, so the
// guards in the callees cover it. Accepted.
func (g *Gauge) Twice(n int64) {
	g.Set(2 * n)
}

// reset is unexported: only the exported surface is contractual.
func (g *Gauge) reset() { g.v = 0 }

type Registry struct{ counters map[string]*Counter }

// Counter guards in the second statement (after declaring the zero
// result): accepted.
func (r *Registry) Counter(name string) *Counter {
	var zero *Counter
	if r == nil {
		return zero
	}
	return r.counters[name]
}

// value receivers cannot be nil, so they are exempt.
type snapshot struct{ n int64 }

func (s snapshot) N() int64 { return s.n }
