// Package app seeds epoch-fencing violations for the epochguard
// analyzer: internal/ consumers dispatching on protocol.TypeMatch must
// consult the negotiator-epoch high-water mark, or a deposed leader's
// stale MATCH would be honoured.
package app

import "repro/internal/protocol"

type daemon struct {
	highestEpoch uint64
}

// badDispatch acts on a MATCH without ever looking at an epoch.
func (d *daemon) badDispatch(env *protocol.Envelope) *protocol.Envelope {
	switch env.Type {
	case protocol.TypeMatch: // want "TypeMatch consumer never consults the negotiator epoch"
		return &protocol.Envelope{Type: protocol.TypeAck, Name: env.Name}
	default:
		return &protocol.Envelope{Type: protocol.TypeError}
	}
}

// goodInline fences right in the case clause.
func (d *daemon) goodInline(env *protocol.Envelope) *protocol.Envelope {
	switch env.Type {
	case protocol.TypeMatch:
		if env.Epoch < d.highestEpoch {
			return &protocol.Envelope{Type: protocol.TypeError}
		}
		return &protocol.Envelope{Type: protocol.TypeAck}
	default:
		return &protocol.Envelope{Type: protocol.TypeError}
	}
}

// goodViaHelper delegates to a same-file handler that fences; the
// analyzer follows the call.
func (d *daemon) goodViaHelper(env *protocol.Envelope) *protocol.Envelope {
	switch env.Type {
	case protocol.TypeMatch:
		return d.handleMatch(env)
	default:
		return &protocol.Envelope{Type: protocol.TypeError}
	}
}

func (d *daemon) handleMatch(env *protocol.Envelope) *protocol.Envelope {
	if env.Epoch > 0 && env.Epoch < d.highestEpoch {
		return &protocol.Envelope{Type: protocol.TypeError}
	}
	return &protocol.Envelope{Type: protocol.TypeAck}
}

// waived is deliberately advisory: the claim protocol re-verifies
// everything the MATCH carries.
func (d *daemon) waived(env *protocol.Envelope) *protocol.Envelope {
	switch env.Type {
	case protocol.TypeMatch: //epochguard:ok advisory notification, claim re-fences
		return &protocol.Envelope{Type: protocol.TypeAck}
	default:
		return &protocol.Envelope{Type: protocol.TypeError}
	}
}

// otherTypes don't need an epoch consult at all.
func (d *daemon) otherTypes(env *protocol.Envelope) *protocol.Envelope {
	switch env.Type {
	case protocol.TypeQuery:
		return &protocol.Envelope{Type: protocol.TypeQueryReply}
	default:
		return &protocol.Envelope{Type: protocol.TypeError}
	}
}
