// Cross-file delegation: the MATCH case hands off to a handler
// declared in crossfile_helper.go that fences on the epoch. The old
// single-file analyzer could not see that body and reported a false
// positive here; the typed call graph follows the call and stays
// silent. The dot-import dispatch below is the converse: no qualifier
// for a syntax matcher to key on, but the violation is still caught.
package app

import . "repro/internal/protocol"

func (d *daemon) dispatchRemote(env *Envelope) *Envelope {
	switch env.Type {
	case TypeMatch:
		return d.handleMatchRemote(env)
	default:
		return &Envelope{Type: TypeError}
	}
}

// dotBadDispatch never consults an epoch, and the bare TypeMatch
// constant resolves by identity despite the dot import.
func (d *daemon) dotBadDispatch(env *Envelope) *Envelope {
	switch env.Type {
	case TypeMatch: // want "TypeMatch consumer never consults the negotiator epoch"
		return &Envelope{Type: TypeAck, Name: env.Name}
	default:
		return &Envelope{Type: TypeError}
	}
}
