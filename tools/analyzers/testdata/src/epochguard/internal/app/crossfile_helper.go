package app

import "repro/internal/protocol"

// handleMatchRemote fences: dispatchRemote in crossfile.go relies on
// this body being visible across files.
func (d *daemon) handleMatchRemote(env *protocol.Envelope) *protocol.Envelope {
	if env.Epoch > 0 && env.Epoch < d.highestEpoch {
		return &protocol.Envelope{Type: protocol.TypeError}
	}
	return &protocol.Envelope{Type: protocol.TypeAck}
}
