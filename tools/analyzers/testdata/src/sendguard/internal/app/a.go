// Package app seeds dispatch-path backpressure violations for the
// sendguard analyzer: a protocol handler (or anything it synchronously
// calls) must never park on a bare channel send — the dispatcher
// goroutine is what drains the peer's socket.
package app

import "repro/internal/protocol"

type router struct {
	out  chan int
	done chan struct{}
}

// handleDeliver is a root by name and signature; the bare send blocks
// the dispatch goroutine when out's consumer is slow.
func (r *router) handleDeliver(env *protocol.Envelope) *protocol.Envelope {
	r.out <- 1 // want "blocking channel send on a protocol dispatch path"
	return &protocol.Envelope{Type: protocol.TypeAck}
}

// handleBuffered sheds load instead of blocking: select with default.
func (r *router) handleBuffered(env *protocol.Envelope) *protocol.Envelope {
	select {
	case r.out <- 1:
	default:
	}
	return &protocol.Envelope{Type: protocol.TypeAck}
}

// handleBounded bounds the wait with a receive alternative: a closed
// done channel unblocks the send either way.
func (r *router) handleBounded(env *protocol.Envelope) *protocol.Envelope {
	select {
	case r.out <- 1:
	case <-r.done:
	}
	return &protocol.Envelope{Type: protocol.TypeAck}
}

// handleSendOnly has a select, but every clause is a send: no escape.
func (r *router) handleSendOnly(env *protocol.Envelope) *protocol.Envelope {
	select {
	case r.out <- 1: // want "blocking channel send on a protocol dispatch path"
	}
	return &protocol.Envelope{Type: protocol.TypeAck}
}

// handleAsync hands the send to another goroutine: the dispatcher
// itself never blocks (goroguard, not sendguard, owns that spawn).
func (r *router) handleAsync(env *protocol.Envelope) *protocol.Envelope {
	go func() {
		select {
		case r.out <- 1:
		case <-r.done:
		}
	}()
	return &protocol.Envelope{Type: protocol.TypeAck}
}

// handleWaived documents why this send cannot actually block.
func (r *router) handleWaived(env *protocol.Envelope) *protocol.Envelope {
	r.out <- 1 //sendguard:ok out is buffered to the maximum in-flight count
	return &protocol.Envelope{Type: protocol.TypeAck}
}
