// The reachability half: dispatchEnvelope is a root because it
// switches on protocol.MsgType, and the violation lives two calls
// away in a helper — only call-graph reachability finds it. offPath
// is the negative control: same send, not reachable from any dispatch
// root, so no finding.
package app

import "repro/internal/protocol"

func (r *router) dispatchEnvelope(env *protocol.Envelope) {
	switch env.Type {
	case protocol.TypeMatch:
		r.enqueue()
	}
}

func (r *router) enqueue() {
	r.forward()
}

func (r *router) forward() {
	r.out <- 1 // want "blocking channel send on a protocol dispatch path"
}

// offPath performs the identical send but is never called from a
// dispatch path: sendguard's scope is the dispatch call graph, not
// every send in the package.
func (r *router) offPath() {
	r.out <- 2
}
