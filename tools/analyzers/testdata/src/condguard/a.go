// Package condguard seeds sync.Cond discipline violations: Wait
// outside a condition loop, and Signal/Broadcast without the
// associated mutex held. The Cond→mutex association is recovered from
// the sync.NewCond construction sites by object identity.
package condguard

import "sync"

type queue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	items    []int
}

func newQueue() *queue {
	q := &queue{}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// badWait proceeds on a spurious or stale wakeup: the condition is
// checked once, before sleeping, never after.
func (q *queue) badWait() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		q.notEmpty.Wait() // want "sync\\.Cond\\.Wait outside a for-condition loop"
	}
	item := q.items[0]
	q.items = q.items[1:]
	return item
}

// goodWait re-checks in a loop: the only safe shape.
func (q *queue) goodWait() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.notEmpty.Wait()
	}
	item := q.items[0]
	q.items = q.items[1:]
	return item
}

// badSignal races the waiter's condition check: the append and the
// wakeup are not atomic with respect to a waiter testing len(items).
func (q *queue) badSignal(item int) {
	q.mu.Lock()
	q.items = append(q.items, item)
	q.mu.Unlock()
	q.notEmpty.Signal() // want "sync\\.Cond\\.Signal without holding mu"
}

// goodBroadcast wakes under the lock.
func (q *queue) goodBroadcast(item int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, item)
	q.notEmpty.Broadcast()
}

// waivedSignal documents why the unlocked wakeup is tolerable here.
func (q *queue) waivedSignal() {
	q.notEmpty.Signal() //condguard:ok close-time wakeup, no condition left to miss
}
