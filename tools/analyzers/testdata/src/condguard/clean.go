// Clean file: disciplined sync.Cond use end to end — the analyzer
// must stay silent here.
package condguard

import "sync"

type gate struct {
	mu     sync.Mutex
	open   bool
	opened *sync.Cond
}

func newGate() *gate {
	g := &gate{}
	g.opened = sync.NewCond(&g.mu)
	return g
}

func (g *gate) waitOpen() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for !g.open {
		g.opened.Wait()
	}
}

func (g *gate) openUp() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.open = true
	g.opened.Broadcast()
}
