// Package lockguard seeds network-I/O-under-lock violations for the
// lockguard analyzer.
package lockguard

import (
	"net"
	"sync"

	"repro/internal/protocol"
)

type dialer struct{}

func (dialer) Dial(addr string) (net.Conn, error) { return nil, nil }

type server struct {
	mu    sync.Mutex
	state sync.RWMutex
	d     dialer
	ch    chan int
	conn  net.Conn
}

func (s *server) sendWhileLocked() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while s\\.mu is held"
	s.mu.Unlock()
}

func (s *server) dialWhileLocked(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	net.Dial("tcp", addr) // want "net\\.Dial while s\\.mu is held"
}

// A deferred unlock keeps the lock held to the end of the function.
func (s *server) deferKeepsHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 2 // want "channel send while s\\.mu is held"
}

func (s *server) rpcWhileReadLocked(env *protocol.Envelope) {
	s.state.RLock()
	defer s.state.RUnlock()
	protocol.Write(s.conn, env) // want "protocol\\.Write round-trip while s\\.state is held"
}

func (s *server) dialerWhileLocked(addr string) {
	s.mu.Lock()
	s.d.Dial(addr) // want "s\\.d\\.Dial while s\\.mu is held"
	s.mu.Unlock()
}

// Unlock-then-send is the fix the analyzer pushes toward.
func (s *server) sendAfterUnlock() {
	s.mu.Lock()
	v := 3
	s.mu.Unlock()
	s.ch <- v
}

// A send in a select with a default case cannot block.
func (s *server) nonBlockingSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 4:
	default:
	}
}

// A select without a default blocks like a bare send.
func (s *server) blockingSelectSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 5: // want "channel send while s\\.mu is held"
	}
}

// A spawned goroutine does not hold the caller's lock.
func (s *server) handoff() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 6
	}()
}

// Listening-side net use under a lock stays legal.
func (s *server) listenWhileLocked() (net.Listener, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return net.Listen("tcp", "127.0.0.1:0")
}
