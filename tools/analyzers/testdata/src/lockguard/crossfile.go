// The cross-file half of the invariant: the dial is buried in a
// helper declared in crossfile_helper.go. The old single-file matcher
// could not see through the call; the typed call graph follows it and
// names both the helper and the blocking operation it performs.
package lockguard

import "sync"

type registrar struct {
	mu sync.Mutex
}

func (r *registrar) register() {
	r.mu.Lock()
	defer r.mu.Unlock()
	helperDial() // want "call to helperDial, which performs net\\.Dial, while r\\.mu is held"
}

// registerIndirect blocks two hops away: the helper's own callee
// dials. The summary is transitive within the package.
func (r *registrar) registerIndirect() {
	r.mu.Lock()
	defer r.mu.Unlock()
	helperIndirect() // want "call to helperIndirect, which performs net\\.Dial, while r\\.mu is held"
}

// registerWaived documents why the blocking call is acceptable.
func (r *registrar) registerWaived() {
	r.mu.Lock()
	defer r.mu.Unlock()
	helperDial() //lockguard:ok startup path, no contenders yet
}

// registerUnlocked is fine: the helper runs after the lock is gone.
func (r *registrar) registerUnlocked() {
	r.mu.Lock()
	r.mu.Unlock()
	helperDial()
}
