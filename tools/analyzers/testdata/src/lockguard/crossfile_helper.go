package lockguard

import "net"

// helperDial performs the blocking operation the callers in
// crossfile.go must not run under a lock.
func helperDial() {
	c, err := net.Dial("tcp", "collector:9618")
	if err == nil {
		c.Close()
	}
}

// helperIndirect blocks only through helperDial.
func helperIndirect() {
	helperDial()
}

// helperPure never blocks; calls to it under a lock stay silent.
func helperPure() int { return 42 }
