// Package msgswitch seeds envelope-type switches for the msgswitch
// analyzer. The import is invisible to the go tool (testdata is never
// built) but fully type-checked by the analyzer's own loader: case
// constants resolve by identity, not by spelling.
package msgswitch

import "repro/internal/protocol"

func partial(env *protocol.Envelope) int {
	switch env.Type { // want "covers 2 of 28 protocol message types without a default clause"
	case protocol.TypeAdvertise:
		return 1
	case protocol.TypeQuery:
		return 2
	}
	return 0
}

func defaulted(env *protocol.Envelope) int {
	switch env.Type {
	case protocol.TypeAck:
		return 1
	default:
		return 0
	}
}

// Switches that never name a message type are out of scope.
func unrelated(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}
