// A dot import strips the `protocol.` qualifier from the case
// constants — the old matcher resolved cases by selector text and saw
// an empty case list here. Constant identity resolves the bare names
// to the same canonical vocabulary.
package msgswitch

import . "repro/internal/protocol"

func dotPartial(env *Envelope) {
	switch env.Type { // want "covers 2 of 28 protocol message types without a default clause"
	case TypeAdvertise:
	case TypeQuery:
	}
}

func dotDefaulted(env *Envelope) {
	switch env.Type {
	case TypeAdvertise:
	default:
	}
}
