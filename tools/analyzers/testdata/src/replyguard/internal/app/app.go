// Package app seeds reply-conformance violations for the replyguard
// analyzer: protocol request handlers must answer on every return
// path, and with a reply-class envelope.
package app

import "repro/internal/protocol"

type server struct{}

// handleNil drops the request on one path — a hung peer.
func (s *server) handleNil(env *protocol.Envelope) *protocol.Envelope {
	if env.Name == "" {
		return nil // want "handler handleNil returns nil reply"
	}
	return &protocol.Envelope{Type: protocol.TypeAck}
}

// handleBackwards answers a claim with another request-class message,
// inverting the protocol's direction on the connection.
func (s *server) handleBackwards(env *protocol.Envelope) *protocol.Envelope {
	return &protocol.Envelope{Type: protocol.TypeMatch} // want "handler handleBackwards replies with request-class TypeMatch"
}

// dispatchQuery is well-behaved: every path yields a reply-class
// envelope.
func (s *server) dispatchQuery(env *protocol.Envelope) *protocol.Envelope {
	if env.Name == "" {
		return &protocol.Envelope{Type: protocol.TypeError}
	}
	return &protocol.Envelope{Type: protocol.TypeQueryReply}
}

// handleHijack documents why its nil is fine: the handler took over
// the connection and will write frames itself.
func (s *server) handleHijack(env *protocol.Envelope) *protocol.Envelope {
	return nil //replyguard:ok connection hijacked, handler streams frames directly
}

// handleNamed uses a bare return with named results; the analyzer
// cannot see through it syntactically and stays silent.
func (s *server) handleNamed(env *protocol.Envelope) (reply *protocol.Envelope) {
	reply = &protocol.Envelope{Type: protocol.TypeAck}
	return
}

// handleErrPair returns (reply, error): the envelope index is tracked
// positionally, so the nil error on the happy path is not a finding
// but the nil reply on the sad path is.
func (s *server) handleErrPair(env *protocol.Envelope) (*protocol.Envelope, error) {
	if env.Name == "" {
		return nil, nil // want "handler handleErrPair returns nil reply"
	}
	return &protocol.Envelope{Type: protocol.TypeClaimReply}, nil
}

// handleClosure's inner function literal is the closure's business,
// not the handler's return path.
func (s *server) handleClosure(env *protocol.Envelope) *protocol.Envelope {
	f := func() *protocol.Envelope {
		return nil
	}
	_ = f
	return &protocol.Envelope{Type: protocol.TypeAck}
}

// lookup is not named handle*/dispatch*, so it is out of scope even
// though it returns an envelope.
func (s *server) lookup(name string) *protocol.Envelope {
	return nil
}
