// A type alias hides the `*protocol.Envelope` result spelling the old
// matcher keyed handler signatures on — this handler was simply not a
// handler to it. Type identity resolves *reply to *protocol.Envelope
// and the conformance rules apply.
package app

import "repro/internal/protocol"

type reply = protocol.Envelope

func handleAliased(env *protocol.Envelope) *reply {
	if env == nil {
		return nil // want "handler handleAliased returns nil reply"
	}
	return &reply{Type: protocol.TypeAck}
}
