// Clean file: the lifecycle-owner pattern the daemons use — spawn
// under a WaitGroup, stop via a closed done channel. The analyzer must
// stay silent here.
package app

import "sync"

type pump struct {
	wg   sync.WaitGroup
	stop chan struct{}
	out  chan int
}

func (p *pump) start() {
	p.wg.Add(1)
	go p.run()
}

func (p *pump) run() {
	defer p.wg.Done()
	for {
		select {
		case p.out <- 1:
		case <-p.stop:
			return
		}
	}
}

func (p *pump) close() {
	close(p.stop)
	p.wg.Wait()
}
