// Package app seeds goroutine-lifecycle violations for the goroguard
// analyzer: every `go` statement in internal/ needs a reachable
// shutdown path — WaitGroup registration by the spawner, or a
// done-channel/context signal in the spawned body.
package app

import (
	"context"
	"sync"
)

type server struct {
	wg   sync.WaitGroup
	done chan struct{}
	work chan int
}

// leak spawns a goroutine nothing can stop: no WaitGroup, no signal.
func (s *server) leak() {
	go func() { // want "goroutine has no reachable shutdown path"
		for {
			process(0)
		}
	}()
}

// leakNamed leaks through a named function: the body is resolved
// through the call graph, not just function literals.
func (s *server) leakNamed() {
	go spin() // want "goroutine has no reachable shutdown path"
}

func spin() {
	for {
		process(0)
	}
}

// joined registers with the owner's WaitGroup: the owner's Close joins.
func (s *server) joined() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			process(0)
		}
	}()
}

// signaled watches a done channel: closing it unblocks the select.
func (s *server) signaled() {
	go func() {
		for {
			select {
			case n := <-s.work:
				process(n)
			case <-s.done:
				return
			}
		}
	}()
}

// ranged drains a channel: closing s.work ends the loop.
func (s *server) ranged() {
	go func() {
		for n := range s.work {
			process(n)
		}
	}()
}

// ctxBound watches a context.
func (s *server) ctxBound(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) {
	<-ctx.Done()
}

// waived documents why the leak is deliberate.
func (s *server) waived() {
	go spin() //goroguard:ok process-lifetime pump, dies with the process
}

func process(int) {}
