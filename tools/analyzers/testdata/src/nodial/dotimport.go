// A dot import erases the package qualifier entirely — the old
// syntactic matcher keyed on the written `net.` selector and was blind
// to this spelling. Typed resolution flags the bare identifier.
package nodial

import . "net"

func dotDial() (Conn, error) {
	return Dial("tcp", "collector:9618") // want "net\\.Dial bypasses internal/netx"
}
