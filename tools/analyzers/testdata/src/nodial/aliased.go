package nodial

import stdnet "net"

func aliased(addr string) (stdnet.Conn, error) {
	return stdnet.Dial("tcp", addr) // want "stdnet\\.Dial bypasses internal/netx"
}
