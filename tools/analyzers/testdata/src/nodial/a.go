// Package nodial seeds raw-dial violations for the nodial analyzer.
package nodial

import (
	"net"
	"time"
)

func bad(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want "net\\.Dial bypasses internal/netx"
}

func alsoBad(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second) // want "net\\.DialTimeout bypasses internal/netx"
}

func sneaky(addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: time.Second} // want "net\\.Dialer bypasses internal/netx"
	return d.Dial("tcp", addr)
}

// Listening-side use of package net stays legal.
func fine() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
