// A type alias hides the `protocol.Envelope` spelling the old matcher
// keyed composite literals on. Type identity sees through the alias:
// an env literal IS a protocol.Envelope literal.
package app

import "repro/internal/protocol"

type env = protocol.Envelope

func badAliasedMatch(ticket string) *env {
	return &env{ // want "TypeMatch envelope without Trace"
		Type:   protocol.TypeMatch,
		Ticket: ticket,
	}
}

func goodAliasedMatch(trace string) *env {
	return &env{
		Type:  protocol.TypeMatch,
		Trace: trace,
	}
}
