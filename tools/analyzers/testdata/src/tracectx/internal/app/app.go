// Package app seeds trace-context violations for the tracectx
// analyzer: lifecycle envelopes (MATCH, CLAIM, RELEASE, PREEMPT,
// JOB_DONE) built in internal/ packages must carry Trace so the span
// tree an operator pulls with `cstatus -trace` stays connected.
package app

import "repro/internal/protocol"

func send(*protocol.Envelope) {}

func badMatch(ticket string) {
	send(&protocol.Envelope{ // want "TypeMatch envelope without Trace"
		Type:   protocol.TypeMatch,
		Ticket: ticket,
	})
}

func badClaimValue() protocol.Envelope {
	return protocol.Envelope{Type: protocol.TypeClaim} // want "TypeClaim envelope without Trace"
}

func goodRelease(trace string) {
	send(&protocol.Envelope{
		Type:  protocol.TypeRelease,
		Trace: trace,
	})
}

// An explicit waiver silences the finding.
func waivedPreempt() {
	send(&protocol.Envelope{ //tracectx:ok fault injector replays pre-tracing envelopes
		Type: protocol.TypePreempt,
	})
}

// Control-plane messages carry no job trace; they are exempt.
func fineAdvertise() {
	send(&protocol.Envelope{Type: protocol.TypeAdvertise})
}
