package analyzers

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// FsyncGuard enforces the durability invariant introduced with
// internal/store: state that must survive a crash is persisted through
// the store layer (a store.Log, or store.AtomicWriteFile for small
// whole-file state), never with raw os.WriteFile / os.Rename. Neither
// of those syncs the file or its directory, so a power cut can leave a
// truncated file behind a completed rename — the torn state the WAL's
// crash tests exist to rule out. Two rules:
//
//  1. In internal/ packages, calls to os.WriteFile and os.Rename are
//     flagged. internal/store/fs.go is exempt: it is the FS boundary
//     that wraps exactly these primitives with the sync discipline.
//  2. Inside internal/store, a function that calls .Write(...) on
//     anything must also call .Sync(...) — the store layer is where
//     the durability ritual lives, so an unsynced write there is a
//     hole in the contract, not a style choice.
//
// A `//fsyncguard:ok <reason>` comment — on the offending line, or in
// the function's doc comment for rule 2 — suppresses a finding; the
// fault injector uses it where a torn, unsynced write is the point.
var FsyncGuard = &Analyzer{
	Name:      "fsyncguard",
	Doc:       "flags persistence that skips the fsync discipline: raw os.WriteFile/os.Rename in internal/, unsynced writes in internal/store",
	SkipTests: true,
	Run:       runFsyncGuard,
}

// fsyncNames are the package-os calls that look like persistence but
// guarantee none: no file sync, no directory sync.
var fsyncNames = map[string]bool{
	"WriteFile": true,
	"Rename":    true,
}

func runFsyncGuard(p *Pass) {
	dir := filepath.ToSlash(p.Pkg.Dir)
	if !strings.Contains(dir, "internal/") {
		return
	}
	inStore := strings.HasSuffix(dir, "internal/store")
	if !(inStore && strings.HasSuffix(p.File.Path, "fs.go")) {
		checkRawOsPersistence(p)
	}
	if inStore {
		checkUnsyncedWrites(p)
	}
}

// checkRawOsPersistence implements rule 1: os.WriteFile / os.Rename
// outside the FS boundary, resolved by object identity so an aliased
// or dot import of "os" cannot dodge the rule.
func checkRawOsPersistence(p *Pass) {
	inSelector := map[*ast.Ident]bool{}
	report := func(n ast.Node, qual, name string) {
		if suppressedAtLine(p, p.Pkg.Fset.Position(n.Pos()).Line) {
			return
		}
		p.Reportf(n.Pos(),
			"%s.%s persists without fsync: use store.AtomicWriteFile (or a store.Log) so the data survives a crash",
			qual, name)
	}
	ast.Inspect(p.File.Ast, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			inSelector[n.Sel] = true
			obj := p.use(n.Sel)
			if fromPkg(obj, "os") && pkgScoped(obj) && fsyncNames[obj.Name()] {
				report(n, writtenQualifier(n, "os"), obj.Name())
			}
		case *ast.Ident:
			obj := p.use(n)
			if !inSelector[n] && fromPkg(obj, "os") && pkgScoped(obj) && fsyncNames[obj.Name()] {
				report(n, "os", obj.Name())
			}
		}
		return true
	})
}

// checkUnsyncedWrites implements rule 2: within internal/store, every
// function that writes must sync (or carry the directive).
func checkUnsyncedWrites(p *Pass) {
	for _, decl := range p.File.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		// CommentGroup.Text() strips directive comments, so scan the
		// raw list for the waiver.
		if fd.Doc != nil && directiveIn(fd.Doc) {
			continue
		}
		var writes []*ast.SelectorExpr
		synced := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Write":
				writes = append(writes, sel)
			case "Sync", "SyncDir":
				synced = true
			}
			return true
		})
		if synced {
			continue
		}
		for _, sel := range writes {
			if suppressedAtLine(p, p.Pkg.Fset.Position(sel.Pos()).Line) {
				continue
			}
			p.Reportf(sel.Pos(),
				"write without a Sync in the same function: the store layer owns the durability ritual (//fsyncguard:ok <reason> to waive)")
		}
	}
}

// directiveIn reports whether a comment group carries the waiver.
func directiveIn(cg *ast.CommentGroup) bool {
	for _, c := range cg.List {
		if strings.Contains(c.Text, "fsyncguard:ok") {
			return true
		}
	}
	return false
}

// suppressedAtLine reports whether a //fsyncguard:ok directive sits on
// the given source line.
func suppressedAtLine(p *Pass, line int) bool {
	for _, cg := range p.File.Ast.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, "fsyncguard:ok") {
				continue
			}
			if p.Pkg.Fset.Position(c.Pos()).Line == line {
				return true
			}
		}
	}
	return false
}
