package analyzers

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// ReplyGuard enforces the request/reply conformance of protocol
// handlers: a handler that dispatches protocol requests must produce
// an answer on every return path, and the answer must be a
// reply-class message. A `return nil` in a handler is a hung peer —
// the connection loop writes whatever the handler returns, and nil
// either panics the writer or silently drops the request the client
// is blocked on. Returning a request-class envelope (say, a MATCH
// from a claim handler) inverts the protocol's direction on a
// connection the peer is using as a reply channel.
//
// Scope: internal/ functions named handle*/dispatch* whose result
// includes *protocol.Envelope. The request/reply classification below
// is sync-tested against msgswitch's ProtocolMsgTypes (itself
// re-derived from protocol.go's syntax), so the partition cannot
// drift from the wire vocabulary. `//replyguard:ok <reason>` on the
// return's line waives a finding (e.g. a handler whose nil is
// documented as "hijacked the connection").
var ReplyGuard = &Analyzer{
	Name:      "replyguard",
	Doc:       "protocol request handlers must write a reply-class envelope on every return path",
	SkipTests: true,
	Run:       runReplyGuard,
}

// RequestMsgTypes are the message types that initiate an exchange: a
// handler receives them and owes the peer an answer.
var RequestMsgTypes = []string{
	"TypeAdvertise",
	"TypeInvalidate",
	"TypeUpdateDelta",
	"TypeQuery",
	"TypeMatch",
	"TypeClaim",
	"TypeRelease",
	"TypePreempt",
	"TypeChallenge",
	"TypeSubmit",
	"TypeSysOpen",
	"TypeSysRead",
	"TypeSysWrite",
	"TypeSysTrunc",
	"TypeSysClose",
	"TypeCkptSave",
	"TypeCkptLoad",
	"TypeJobDone",
	"TypeLease",
}

// ReplyMsgTypes are the message types that answer an exchange: the
// only types a request handler may return. TestReplyGuardPartition
// checks that RequestMsgTypes and ReplyMsgTypes partition
// ProtocolMsgTypes exactly.
var ReplyMsgTypes = []string{
	"TypeQueryReply",
	"TypeClaimReply",
	"TypeChalReply",
	"TypeAck",
	"TypeError",
	"TypeSysFd",
	"TypeSysData",
	"TypeCkptData",
	"TypeLeaseReply",
}

func runReplyGuard(p *Pass) {
	dir := filepath.ToSlash(p.Pkg.Dir)
	if !strings.Contains(dir, "internal/") {
		return
	}
	requestClass := make(map[string]bool, len(RequestMsgTypes))
	for _, name := range RequestMsgTypes {
		requestClass[name] = true
	}
	for _, decl := range p.File.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !isHandlerName(fd.Name.Name) {
			continue
		}
		idx := envelopeResultIndex(p, fd)
		if idx < 0 {
			continue
		}
		checkHandlerReturns(p, fd, idx, requestClass)
	}
}

// isHandlerName matches the repo's handler naming convention.
func isHandlerName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "handle") || strings.HasPrefix(lower, "dispatch")
}

// envelopeResultIndex finds the *protocol.Envelope result position by
// type identity (a named alias of Envelope still counts), or -1.
func envelopeResultIndex(p *Pass, fd *ast.FuncDecl) int {
	fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return -1
	}
	results := fn.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		t := types.Unalias(results.At(i).Type())
		if _, isPtr := t.(*types.Pointer); isPtr && isEnvelopeType(t) {
			return i
		}
	}
	return -1
}

// checkHandlerReturns walks the handler's own return statements
// (nested function literals are the closure's business, not the
// handler's) and reports nil replies and request-class replies.
func checkHandlerReturns(p *Pass, fd *ast.FuncDecl, idx int, requestClass map[string]bool) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(x.Results) <= idx {
				return true // bare return with named results: can't see it syntactically
			}
			res := x.Results[idx]
			line := p.Pkg.Fset.Position(x.Pos()).Line
			if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
				if !directiveAtLine(p, "replyguard:ok", line) {
					p.Reportf(x.Pos(),
						"handler %s returns nil reply: every protocol request must be answered or explicitly rejected (//replyguard:ok <reason> to waive)",
						fd.Name.Name)
				}
				return true
			}
			if typ := envelopeLitType(p, res); requestClass[typ] {
				if !directiveAtLine(p, "replyguard:ok", line) {
					p.Reportf(x.Pos(),
						"handler %s replies with request-class %s: handlers answer with reply-class envelopes (ACK, ERROR, *_REPLY)",
						fd.Name.Name, typ)
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// envelopeLitType extracts the canonical Type constant name from a
// returned protocol.Envelope composite literal (with or without &) by
// constant identity, or "".
func envelopeLitType(p *Pass, e ast.Expr) string {
	if un, ok := e.(*ast.UnaryExpr); ok {
		e = un.X
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok || !isEnvelopeType(p.typeOf(lit)) {
		return ""
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Type" {
			continue
		}
		return p.msgConstName(kv.Value)
	}
	return ""
}
