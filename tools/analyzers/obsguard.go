package analyzers

import (
	"go/ast"
	"go/types"
)

// ObsGuard enforces the contract internal/obs documents: every
// exported method on a hook type is nil-receiver-safe, so an
// uninstrumented component can hold nil hooks and never branch on "is
// observability on". A method is accepted when it guards the receiver
// against nil within its first two statements (and does not touch the
// receiver before the guard), or when it uses the receiver solely as
// the receiver of further method calls — delegation, where the guard
// lives in the callee (Counter.Inc calling Add, Obs.Handler composing
// Registry and Events).
var ObsGuard = &Analyzer{
	Name:      "obsguard",
	Doc:       "exported methods on obs hook types must nil-guard their receiver or delegate to a guarded method",
	SkipTests: true,
	Run:       runObsGuard,
}

// guardedTypes are the hook types components hold as possibly-nil
// fields.
var guardedTypes = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Registry":  true,
	"Events":    true,
	"Obs":       true,
}

func runObsGuard(p *Pass) {
	if p.File.Ast.Name.Name != "obs" {
		return
	}
	for _, decl := range p.File.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		recv, typ := receiver(p, fd)
		if typ == "" || !guardedTypes[typ] {
			continue
		}
		if nilGuarded(fd.Body, recv) || onlyMethodCalls(fd.Body, recv) {
			continue
		}
		p.Reportf(fd.Pos(),
			"(*%s).%s is not nil-receiver-safe: guard %q against nil in the first two statements or delegate to a guarded method",
			typ, fd.Name.Name, recv)
	}
}

// receiver resolves the receiver identifier and pointed-to type name
// through the type checker ("" type for value receivers, which cannot
// be nil). Resolving by type identity instead of receiver syntax means
// a parenthesized receiver like `(c *(Counter))` cannot dodge the
// check the way it dodged the old StarExpr{Ident} pattern match.
func receiver(p *Pass, fd *ast.FuncDecl) (name, typ string) {
	fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return "", ""
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", ""
	}
	ptr, ok := types.Unalias(sig.Recv().Type()).(*types.Pointer)
	if !ok {
		return "", ""
	}
	named := namedOf(ptr.Elem())
	if named == nil {
		return "", ""
	}
	if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		name = fd.Recv.List[0].Names[0].Name
	}
	return name, named.Obj().Name()
}

// nilGuarded reports whether one of the first two statements is an if
// whose condition compares the receiver against nil, with no use of
// the receiver before the guard.
func nilGuarded(body *ast.BlockStmt, recv string) bool {
	if recv == "" {
		return false
	}
	for i, stmt := range body.List {
		if i >= 2 {
			break
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok {
			if mentions(stmt, recv) {
				return false
			}
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			if isIdent(bin.X, recv) && isIdent(bin.Y, "nil") {
				found = true
			}
			if isIdent(bin.Y, recv) && isIdent(bin.X, "nil") {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// mentions reports whether n references the receiver identifier.
func mentions(n ast.Node, recv string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if isIdentNode(x, recv) {
			found = true
		}
		return !found
	})
	return found
}

// onlyMethodCalls reports whether every use of the receiver in the
// body is as the receiver of a method call (recv.M(...)): the method
// never dereferences the receiver itself, so nil-safety is inherited
// from the (guarded) callees. Field access like recv.v disqualifies.
func onlyMethodCalls(body *ast.BlockStmt, recv string) bool {
	if recv == "" {
		return false
	}
	callRecv := map[*ast.Ident]bool{}
	uses := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
					callRecv[id] = true
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == recv {
			uses++
		}
		return true
	})
	if uses == 0 {
		// A body that never touches the receiver cannot dereference it.
		return true
	}
	bad := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == recv && !callRecv[id] {
			bad = true
		}
		return !bad
	})
	return !bad
}

func isIdentNode(n ast.Node, name string) bool {
	id, ok := n.(*ast.Ident)
	return ok && id.Name == name
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
