package analyzers

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// TraceCtx enforces the causal-tracing invariant PR 7 introduced: every
// envelope on the match/claim lifecycle carries the trace context of
// the job it concerns, so `cstatus -trace` can stitch the submission's
// story across daemons. Concretely, a protocol.Envelope composite
// literal in an internal/ package whose Type is one of the lifecycle
// messages (MATCH, CLAIM, RELEASE, PREEMPT, JOB_DONE) must also set
// Trace — an untraced hop is a hole in the span tree that only shows
// up when an operator needs the trace most, mid-incident.
//
// Advertising and control messages (ADVERTISE, SUBMIT, ACK, ...) are
// exempt: they either mint the trace themselves or carry none. A
// `//tracectx:ok <reason>` comment on the literal's opening line
// waives a finding for deliberately untraced hops (e.g. a fault
// injector replaying a pre-tracing envelope).
var TraceCtx = &Analyzer{
	Name:      "tracectx",
	Doc:       "lifecycle protocol.Envelope literals in internal/ must carry Trace so span trees stay connected",
	SkipTests: true,
	Run:       runTraceCtx,
}

// tracedMsgTypes are the Type constant names whose envelopes ride the
// match/claim lifecycle and therefore must propagate trace context.
var tracedMsgTypes = map[string]bool{
	"TypeMatch":   true,
	"TypeClaim":   true,
	"TypeRelease": true,
	"TypePreempt": true,
	"TypeJobDone": true,
}

func runTraceCtx(p *Pass) {
	dir := filepath.ToSlash(p.Pkg.Dir)
	if !strings.Contains(dir, "internal/") {
		return
	}
	ast.Inspect(p.File.Ast, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		// Type identity, not spelling: `protocol.Envelope{...}` under
		// any import alias, and a composite literal of a local alias
		// type (`type env = protocol.Envelope`), both resolve here.
		if !ok || !isEnvelopeType(p.typeOf(lit)) {
			return true
		}
		typ, hasTrace := "", false
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Type":
				typ = p.msgConstName(kv.Value)
			case "Trace":
				hasTrace = true
			}
		}
		if !tracedMsgTypes[typ] || hasTrace {
			return true
		}
		if directiveAtLine(p, "tracectx:ok", p.Pkg.Fset.Position(lit.Pos()).Line) {
			return true
		}
		p.Reportf(lit.Pos(),
			"%s envelope without Trace: lifecycle messages must propagate trace context (//tracectx:ok <reason> to waive)",
			typ)
		return true
	})
}

// directiveAtLine reports whether a comment containing the directive
// sits on the given source line.
func directiveAtLine(p *Pass, directive string, line int) bool {
	for _, cg := range p.File.Ast.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, directive) &&
				p.Pkg.Fset.Position(c.Pos()).Line == line {
				return true
			}
		}
	}
	return false
}
