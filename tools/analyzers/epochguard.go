package analyzers

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// EpochGuard enforces the epoch-fencing conformance rule the HA
// negotiator pair depends on: every MATCH-envelope consumer in
// internal/ must consult the negotiator-epoch high-water mark before
// acting on the notification. A deposed leader keeps sending MATCHes
// until it notices its lease lapsed; a consumer that dispatches on
// protocol.TypeMatch without ever looking at an epoch will honour
// those stale introductions, which is exactly the double-grant the
// lease's fencing token exists to prevent (modelcheck invariant
// MC102 is the dynamic half of this check).
//
// The check is syntactic but call-following: the `case
// protocol.TypeMatch:` clause, or any same-file function it calls
// (transitively), must reference an identifier containing "epoch"
// (e.g. env.Epoch, highestEpoch, ObserveEpoch). Consumers that are
// deliberately advisory — the MATCH carries nothing the claim protocol
// does not re-verify — waive the finding with `//epochguard:ok
// <reason>` on the case clause's line.
var EpochGuard = &Analyzer{
	Name:      "epochguard",
	Doc:       "MATCH-envelope consumers in internal/ must consult the negotiator-epoch high-water mark",
	SkipTests: true,
	Run:       runEpochGuard,
}

func runEpochGuard(p *Pass) {
	dir := filepath.ToSlash(p.Pkg.Dir)
	if !strings.Contains(dir, "internal/") {
		return
	}
	alias := importName(p.File.Ast, "repro/internal/protocol")
	if alias == "" {
		return
	}
	// Index the file's function declarations so the check can follow
	// `reply = d.handleMatch(env)` into the handler's body.
	fns := map[string]*ast.FuncDecl{}
	for _, decl := range p.File.Ast.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			fns[fd.Name.Name] = fd
		}
	}
	ast.Inspect(p.File.Ast, func(n ast.Node) bool {
		clause, ok := n.(*ast.CaseClause)
		if !ok || !caseListsMatch(clause, alias) {
			return true
		}
		if consultsEpoch(clause.Body, fns, map[string]bool{}) {
			return true
		}
		if directiveAtLine(p, "epochguard:ok", p.Pkg.Fset.Position(clause.Pos()).Line) {
			return true
		}
		p.Reportf(clause.Pos(),
			"TypeMatch consumer never consults the negotiator epoch: a deposed leader's stale MATCH would be honoured (//epochguard:ok <reason> to waive)")
		return true
	})
}

// caseListsMatch reports whether the clause dispatches on
// protocol.TypeMatch.
func caseListsMatch(clause *ast.CaseClause, alias string) bool {
	for _, e := range clause.List {
		if isSelector(e, alias, "TypeMatch") {
			return true
		}
	}
	return false
}

// consultsEpoch reports whether the statements, or any same-file
// function they (transitively) call, reference an epoch identifier.
func consultsEpoch(stmts []ast.Stmt, fns map[string]*ast.FuncDecl, visited map[string]bool) bool {
	found := false
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			switch x := n.(type) {
			case *ast.Ident:
				if strings.Contains(strings.ToLower(x.Name), "epoch") {
					found = true
					return false
				}
			case *ast.CallExpr:
				if name := calleeName(x); name != "" && !visited[name] {
					visited[name] = true
					if fd := fns[name]; fd != nil && fd.Body != nil &&
						consultsEpoch(fd.Body.List, fns, visited) {
						found = true
						return false
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// calleeName extracts the called function or method name from a call
// expression: f(...) or recv.f(...).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
