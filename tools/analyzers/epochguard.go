package analyzers

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// EpochGuard enforces the epoch-fencing conformance rule the HA
// negotiator pair depends on: every MATCH-envelope consumer in
// internal/ must consult the negotiator-epoch high-water mark before
// acting on the notification. A deposed leader keeps sending MATCHes
// until it notices its lease lapsed; a consumer that dispatches on
// protocol.TypeMatch without ever looking at an epoch will honour
// those stale introductions, which is exactly the double-grant the
// lease's fencing token exists to prevent (modelcheck invariant
// MC102 is the dynamic half of this check).
//
// The check is call-following through the typed call graph: the `case
// protocol.TypeMatch:` clause, or any module function it calls
// (transitively, across files and packages), must reference an
// identifier containing "epoch" (e.g. env.Epoch, highestEpoch,
// ObserveEpoch). The case expression resolves by constant identity, so
// a dot import or local constant alias of TypeMatch is still TypeMatch.
// Consumers that are deliberately advisory — the MATCH carries nothing
// the claim protocol does not re-verify — waive the finding with
// `//epochguard:ok <reason>` on the case clause's line.
var EpochGuard = &Analyzer{
	Name:      "epochguard",
	Doc:       "MATCH-envelope consumers in internal/ must consult the negotiator-epoch high-water mark",
	SkipTests: true,
	Run:       runEpochGuard,
}

func runEpochGuard(p *Pass) {
	dir := filepath.ToSlash(p.Pkg.Dir)
	if !strings.Contains(dir, "internal/") {
		return
	}
	cg := p.Prog.CallGraph()
	ast.Inspect(p.File.Ast, func(n ast.Node) bool {
		clause, ok := n.(*ast.CaseClause)
		if !ok || !caseListsMatch(p, clause) {
			return true
		}
		if consultsEpoch(p, cg, clause.Body, map[*types.Func]bool{}) {
			return true
		}
		if directiveAtLine(p, "epochguard:ok", p.Pkg.Fset.Position(clause.Pos()).Line) {
			return true
		}
		p.Reportf(clause.Pos(),
			"TypeMatch consumer never consults the negotiator epoch: a deposed leader's stale MATCH would be honoured (//epochguard:ok <reason> to waive)")
		return true
	})
}

// caseListsMatch reports whether the clause dispatches on
// protocol.TypeMatch, by constant identity.
func caseListsMatch(p *Pass, clause *ast.CaseClause) bool {
	for _, e := range clause.List {
		if p.msgConstName(e) == "TypeMatch" {
			return true
		}
	}
	return false
}

// consultsEpoch reports whether the statements, or any module function
// they (transitively) call — in this file, another file, or another
// package — reference an epoch identifier.
func consultsEpoch(p *Pass, cg *CallGraph, stmts []ast.Stmt, visited map[*types.Func]bool) bool {
	for _, stmt := range stmts {
		if nodeConsultsEpoch(p.Pkg.Info, cg, stmt, visited) {
			return true
		}
	}
	return false
}

func nodeConsultsEpoch(info *types.Info, cg *CallGraph, node ast.Node, visited map[*types.Func]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if strings.Contains(strings.ToLower(x.Name), "epoch") {
				found = true
				return false
			}
		case *ast.CallExpr:
			fn := StaticCallee(info, x)
			if fn == nil || visited[fn] {
				return true
			}
			visited[fn] = true
			decl := cg.Decl(fn)
			callePkg := cg.PackageOf(fn)
			if decl != nil && decl.Body != nil && callePkg != nil && callePkg.Info != nil &&
				nodeConsultsEpoch(callePkg.Info, cg, decl.Body, visited) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
