package analyzers

import (
	"go/ast"
	"go/types"
)

// CondGuard pins the sync.Cond discipline the Incremental engine's
// Wait/Notify protocol (and the collector's delta subscriptions)
// depend on. Two rules:
//
//  1. Every sync.Cond.Wait sits inside a for loop. Wait releases the
//     lock and can wake spuriously or late — only re-checking the
//     condition in a loop makes the wakeup safe. An `if` around Wait
//     proceeds on a false condition.
//  2. Signal and Broadcast are called only while the mutex the Cond
//     was constructed over is held. An unlocked signal races the
//     waiter's condition check: the waiter can test, lose the CPU,
//     miss the signal, then block forever on a condition that is
//     already true.
//
// The Cond→mutex association is recovered from `sync.NewCond(&mu)`
// construction sites anywhere in the package, by object identity — the
// field the Cond lives in, not the variable name at the call site.
// `//condguard:ok <reason>` on the offending line waives a finding.
var CondGuard = &Analyzer{
	Name:      "condguard",
	Doc:       "sync.Cond.Wait must sit in a condition loop; Signal/Broadcast require the associated mutex held",
	SkipTests: true,
	Run:       runCondGuard,
}

func runCondGuard(p *Pass) {
	if p.Pkg.Info == nil {
		return
	}
	assoc := condAssociations(p.Pkg)
	for _, decl := range p.File.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		checkWaitLoops(p, fd.Body)
		checkSignalsHoldLock(p, fd.Body, assoc)
	}
}

// condMethod recognizes a call to a (*sync.Cond) method and returns
// the method name and the Cond's object (variable or field), or "".
func condMethod(info *types.Info, call *ast.CallExpr) (method string, cond types.Object) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || !fromPkg(fn, "sync") {
		return "", nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", nil
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Cond" {
		return "", nil
	}
	return fn.Name(), lastObj(info, sel.X)
}

// condAssociations maps each Cond object to the mutex object it was
// constructed over, from every `sync.NewCond(&mu)` site in the
// package: assignments, var declarations and composite-literal fields.
func condAssociations(pkg *Package) map[types.Object]types.Object {
	assoc := map[types.Object]types.Object{}
	info := pkg.Info
	// objOf resolves an assignment target: a := defines (Defs), a =
	// uses (Uses), a field selector uses the field object.
	objOf := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if def := info.Defs[id]; def != nil {
				return def
			}
		}
		return lastObj(info, e)
	}
	newCondMutex := func(e ast.Expr) (types.Object, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return nil, false
		}
		fn := StaticCallee(info, call)
		if fn == nil || !isPkgObj(fn, "sync", "NewCond") {
			return nil, false
		}
		return lastObj(info, call.Args[0]), true
	}
	for _, f := range pkg.Files {
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Rhs {
					if mu, ok := newCondMutex(n.Rhs[i]); ok && mu != nil {
						if cond := objOf(n.Lhs[i]); cond != nil {
							assoc[cond] = mu
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i := range n.Values {
					if mu, ok := newCondMutex(n.Values[i]); ok && mu != nil {
						if cond := info.Defs[n.Names[i]]; cond != nil {
							assoc[cond] = mu
						}
					}
				}
			case *ast.KeyValueExpr:
				if mu, ok := newCondMutex(n.Value); ok && mu != nil {
					if key, isID := n.Key.(*ast.Ident); isID {
						if cond := info.Uses[key]; cond != nil {
							assoc[cond] = mu
						}
					}
				}
			}
			return true
		})
	}
	return assoc
}

// checkWaitLoops flags Cond.Wait calls with no enclosing for loop in
// the same function body (function literals are their own scope).
func checkWaitLoops(p *Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				walk(n.Body, 0)
				return false
			case *ast.ForStmt:
				if n.Init != nil {
					walk(n.Init, loopDepth)
				}
				if n.Cond != nil {
					walk(n.Cond, loopDepth)
				}
				if n.Post != nil {
					walk(n.Post, loopDepth)
				}
				walk(n.Body, loopDepth+1)
				return false
			case *ast.CallExpr:
				method, _ := condMethod(p.Pkg.Info, n)
				if method == "Wait" && loopDepth == 0 {
					line := p.Pkg.Fset.Position(n.Pos()).Line
					if !directiveAtLine(p, "condguard:ok", line) {
						p.Reportf(n.Pos(),
							"sync.Cond.Wait outside a for-condition loop: spurious and stale wakeups proceed on a false condition (//condguard:ok <reason> to waive)")
					}
				}
			}
			return true
		})
	}
	walk(body, 0)
}

// checkSignalsHoldLock flags Signal/Broadcast calls made while the
// Cond's associated mutex is not held, threading a statement-ordered
// held set exactly like lockguard (deferred unlock keeps the lock held
// to return; branches fork the set; goroutines and closures start
// lock-free).
func checkSignalsHoldLock(p *Pass, body *ast.BlockStmt, assoc map[types.Object]types.Object) {
	w := &condFlow{pass: p, assoc: assoc}
	w.stmts(body.List, map[types.Object]bool{})
}

type condFlow struct {
	pass  *Pass
	assoc map[types.Object]types.Object
}

func (w *condFlow) stmts(list []ast.Stmt, held map[types.Object]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func copyHeldObjs(held map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func (w *condFlow) stmt(s ast.Stmt, held map[types.Object]bool) {
	switch n := s.(type) {
	case *ast.ExprStmt:
		w.expr(n.X, held)
	case *ast.SendStmt:
		w.expr(n.Chan, held)
		w.expr(n.Value, held)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			w.expr(e, held)
		}
		for _, e := range n.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			w.expr(e, held)
		}
	case *ast.DeferStmt:
		// A deferred unlock releases only at return; the deferred call
		// itself is not part of the walked region.
		for _, arg := range n.Call.Args {
			w.expr(arg, held)
		}
	case *ast.GoStmt:
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, map[types.Object]bool{})
		}
		for _, arg := range n.Call.Args {
			w.expr(arg, held)
		}
	case *ast.BlockStmt:
		w.stmts(n.List, held)
	case *ast.IfStmt:
		if n.Init != nil {
			w.stmt(n.Init, held)
		}
		w.expr(n.Cond, held)
		w.stmts(n.Body.List, copyHeldObjs(held))
		if n.Else != nil {
			w.stmt(n.Else, copyHeldObjs(held))
		}
	case *ast.ForStmt:
		if n.Init != nil {
			w.stmt(n.Init, held)
		}
		if n.Cond != nil {
			w.expr(n.Cond, held)
		}
		w.stmts(n.Body.List, copyHeldObjs(held))
	case *ast.RangeStmt:
		w.expr(n.X, held)
		w.stmts(n.Body.List, copyHeldObjs(held))
	case *ast.SwitchStmt:
		if n.Init != nil {
			w.stmt(n.Init, held)
		}
		if n.Tag != nil {
			w.expr(n.Tag, held)
		}
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeldObjs(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeldObjs(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeldObjs(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(n.Stmt, held)
	}
}

func (w *condFlow) expr(e ast.Expr, held map[types.Object]bool) {
	if e == nil {
		return
	}
	info := w.pass.Pkg.Info
	ast.Inspect(e, func(n ast.Node) bool {
		switch c := n.(type) {
		case *ast.FuncLit:
			w.stmts(c.Body.List, map[types.Object]bool{})
			return false
		case *ast.CallExpr:
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fromPkg(fn, "sync") {
					switch fn.Name() {
					case "Lock", "RLock":
						if mu := lastObj(info, sel.X); mu != nil {
							held[mu] = true
						}
					case "Unlock", "RUnlock":
						if mu := lastObj(info, sel.X); mu != nil {
							delete(held, mu)
						}
					}
				}
			}
			method, cond := condMethod(info, c)
			if (method == "Signal" || method == "Broadcast") && cond != nil {
				if mu := w.assoc[cond]; mu != nil && !held[mu] {
					line := w.pass.Pkg.Fset.Position(c.Pos()).Line
					if !directiveAtLine(w.pass, "condguard:ok", line) {
						w.pass.Reportf(c.Pos(),
							"sync.Cond.%s without holding %s: a waiter can check its condition and block between the state change and this wakeup (//condguard:ok <reason> to waive)",
							method, mu.Name())
					}
				}
			}
		}
		return true
	})
}
