// Package analyzers implements the repository's custom static
// analyzers as a miniature, dependency-free take on the go/analysis
// framework. v2 of the framework is *typed*: the whole module is
// parsed and type-checked once with go/parser + go/types (load.go),
// and every analyzer's Pass carries the package's *types.Info, the
// loaded package graph, and a lazily built cross-package call graph
// (callgraph.go). Analyzers therefore resolve imports, receivers,
// constants and call targets by type identity, not identifier text —
// an aliased or dot import of "net" is still "net", a mutex reached
// through a struct field is still a sync.Mutex, and a helper defined
// in another file (or package) is still followable.
//
// `make verify` drives the suite via tools/analyzers/cmd, so repo
// invariants that gofmt and go vet cannot see — every outbound dial
// goes through internal/netx, obs hook methods stay nil-receiver-safe,
// protocol envelope switches stay exhaustive, modelcheck-replayed code
// stays deterministic — break the build instead of rotting quietly.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one named invariant check, run once per file.
type Analyzer struct {
	// Name identifies the analyzer in findings and test expectations.
	Name string
	// Doc states the invariant the analyzer enforces.
	Doc string
	// SkipTests exempts _test.go files (tests may legitimately break
	// production-only invariants, e.g. dialing a throwaway listener).
	SkipTests bool
	// Run inspects one file and reports violations through the pass.
	Run func(*Pass)
}

// All returns every analyzer `make verify` runs.
func All() []*Analyzer {
	return []*Analyzer{
		NoDial, ObsGuard, MsgSwitch, LockGuard, FsyncGuard, TraceCtx, EpochGuard, ReplyGuard,
		CondGuard, DetermGuard, GoroGuard, SendGuard,
	}
}

// File is one parsed source file.
type File struct {
	Path string
	Ast  *ast.File
	Test bool
}

// Package is one directory's worth of parsed files sharing a FileSet,
// type-checked as one package (in-package _test.go files included,
// exactly as `go test` compiles them).
type Package struct {
	Dir   string
	Path  string // import path ("<module>.test" suffix for external test pkgs)
	Name  string
	Fset  *token.FileSet
	Files []File

	// Types and Info are the go/types results for the package. Info is
	// never nil for a loaded package; TypeErrors collects any check
	// errors (analyzers still run on a partially typed package, the
	// driver surfaces the errors separately).
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Program is one coherent load of the module: the requested packages,
// their shared FileSet, and lazily built whole-program facts (call
// graph, constant tables). All packages share one loader, so types are
// identical across packages and fixture runs.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	loader *loader

	cg        *CallGraph
	msgConsts map[string]string               // constant value -> canonical protocol.Type* name
	blockSumm map[*types.Func]string          // lockguard: does this function block, and how
	reachMemo map[string]map[*types.Func]bool // analyzer name -> reachable-function set
}

// Pass carries one file through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	File     File

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Stat is one analyzer's share of a timed run.
type Stat struct {
	Name     string
	Files    int
	Findings int
	Elapsed  time.Duration
}

// Run applies every analyzer to every file of every package and
// returns the findings in source order.
func Run(as []*Analyzer, prog *Program) []Finding {
	findings, _ := RunTimed(as, prog)
	return findings
}

// RunTimed is Run plus a per-analyzer summary (files visited,
// findings, wall time) for the driver's timing report. Analyzers run
// in the given order; within one analyzer, packages and files run in
// load order, so diagnostics are position-stable across runs.
func RunTimed(as []*Analyzer, prog *Program) ([]Finding, []Stat) {
	var findings []Finding
	stats := make([]Stat, 0, len(as))
	for _, a := range as {
		start := time.Now()
		files := 0
		before := len(findings)
		for _, pkg := range prog.Pkgs {
			for _, f := range pkg.Files {
				if a.SkipTests && f.Test {
					continue
				}
				files++
				a.Run(&Pass{Analyzer: a, Prog: prog, Pkg: pkg, File: f, findings: &findings})
			}
		}
		stats = append(stats, Stat{
			Name:     a.Name,
			Files:    files,
			Findings: len(findings) - before,
			Elapsed:  time.Since(start),
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, stats
}
