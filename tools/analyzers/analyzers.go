// Package analyzers implements the repository's custom static
// analyzers as a miniature, dependency-free take on the go/analysis
// framework: a loader that parses package directories to syntax, a
// Pass that carries one file through one analyzer, and a runner that
// collects findings in source order. `make verify` drives it via
// tools/analyzers/cmd, so repo invariants that gofmt and go vet cannot
// see — every outbound dial goes through internal/netx, obs hook
// methods stay nil-receiver-safe, protocol envelope switches stay
// exhaustive — break the build instead of rotting quietly.
//
// The framework is deliberately syntactic: no type checking, no
// cross-package facts. Each invariant here is checkable from a single
// file's AST, which keeps the whole machine small enough to live in
// the repo it guards.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one named invariant check, run once per file.
type Analyzer struct {
	// Name identifies the analyzer in findings and test expectations.
	Name string
	// Doc states the invariant the analyzer enforces.
	Doc string
	// SkipTests exempts _test.go files (tests may legitimately break
	// production-only invariants, e.g. dialing a throwaway listener).
	SkipTests bool
	// Run inspects one file and reports violations through the pass.
	Run func(*Pass)
}

// All returns every analyzer `make verify` runs.
func All() []*Analyzer {
	return []*Analyzer{NoDial, ObsGuard, MsgSwitch, LockGuard, FsyncGuard, TraceCtx, EpochGuard, ReplyGuard}
}

// File is one parsed source file.
type File struct {
	Path string
	Ast  *ast.File
	Test bool
}

// Package is one directory's worth of parsed files sharing a FileSet.
type Package struct {
	Dir   string
	Name  string
	Fset  *token.FileSet
	Files []File
}

// Pass carries one file through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	File     File

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// LoadDir parses the .go files directly inside dir (non-recursive,
// comments retained for test expectations). Directories with no Go
// files yield a package with no files, not an error.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Fset: token.NewFileSet()}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		f, err := parser.ParseFile(pkg.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		file := File{Path: path, Ast: f, Test: strings.HasSuffix(ent.Name(), "_test.go")}
		pkg.Files = append(pkg.Files, file)
		if pkg.Name == "" && !file.Test {
			pkg.Name = f.Name.Name
		}
	}
	return pkg, nil
}

// Load walks each root recursively and parses every package directory
// found. A trailing "/..." on a root is accepted (and redundant: the
// walk always recurses). testdata, vendor, hidden and underscore
// directories are skipped, mirroring the go tool's build rules.
func Load(roots []string) ([]*Package, error) {
	var pkgs []*Package
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			pkg, err := LoadDir(path)
			if err != nil {
				return err
			}
			if len(pkg.Files) > 0 {
				pkgs = append(pkgs, pkg)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// Run applies every analyzer to every file of every package and
// returns the findings in source order.
func Run(as []*Analyzer, pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range as {
			for _, f := range pkg.Files {
				if a.SkipTests && f.Test {
					continue
				}
				a.Run(&Pass{Analyzer: a, Pkg: pkg, File: f, findings: &findings})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}
