package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// SendGuard is the backpressure rule lockguard only half covers: a
// protocol dispatch path must never block on a bare channel send. The
// dispatcher goroutine is what drains the peer's socket — if it parks
// on a full channel because a consumer is slow, the peer behind it
// stalls, and a consumer that needs the dispatcher to make progress
// deadlocks the connection outright. Sends on a dispatch path must be
// non-blocking (select with default), bounded (select with a
// timeout/cancel alternative), or handed to another goroutine.
//
// Dispatch paths are found through the typed call graph: roots are
// internal/ functions named handle*/dispatch* whose signature touches
// protocol.Envelope, plus any function dispatching on protocol.MsgType
// constants; reachability follows synchronous call edges only (a
// goroutine spawned by a handler has its own backpressure story).
// `//sendguard:ok <reason>` on the send's line waives a finding.
var SendGuard = &Analyzer{
	Name:      "sendguard",
	Doc:       "no blocking channel send on a protocol dispatch path: use select with default or a timeout",
	SkipTests: true,
	Run:       runSendGuard,
}

func runSendGuard(p *Pass) {
	if p.Pkg.Info == nil {
		return
	}
	reach := sendguardReachable(p.Prog)
	for fd, fn := range p.fileFuncs() {
		if !reach[fn] || fd.Body == nil {
			continue
		}
		checkBlockingSends(p, fd.Body)
	}
}

// sendguardReachable computes (once per program) the functions on a
// protocol dispatch path: handler/dispatcher roots and everything they
// synchronously call.
func sendguardReachable(prog *Program) map[*types.Func]bool {
	if prog.reachMemo == nil {
		prog.reachMemo = map[string]map[*types.Func]bool{}
	}
	if r, ok := prog.reachMemo["sendguard"]; ok {
		return r
	}
	cg := prog.CallGraph()
	var roots []*types.Func
	for _, fn := range cg.Funcs() {
		pkg := cg.PackageOf(fn)
		if pkg == nil || !strings.Contains(strings.ReplaceAll(pkg.Dir, "\\", "/")+"/", "internal/") {
			continue
		}
		if isHandlerName(fn.Name()) && sigTouchesEnvelope(fn) {
			roots = append(roots, fn)
			continue
		}
		if decl := cg.Decl(fn); decl != nil && decl.Body != nil && pkg.Info != nil &&
			dispatchesOnMsgType(pkg.Info, decl.Body) {
			roots = append(roots, fn)
		}
	}
	r := cg.Reachable(roots, true)
	prog.reachMemo["sendguard"] = r
	return r
}

// sigTouchesEnvelope reports whether the signature carries a
// protocol.Envelope (or pointer to one) in a parameter or result.
func sigTouchesEnvelope(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	for _, tuple := range []*types.Tuple{sig.Params(), sig.Results()} {
		for i := 0; i < tuple.Len(); i++ {
			if isEnvelopeType(tuple.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

// dispatchesOnMsgType reports whether the body switches over
// protocol.MsgType values.
func dispatchesOnMsgType(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return !found
		}
		if named := namedOf(info.Types[sw.Tag].Type); named != nil &&
			named.Obj().Name() == "MsgType" && fromProtocol(named.Obj()) {
			found = true
		}
		return !found
	})
	return found
}

// checkBlockingSends flags channel sends that can park the dispatch
// goroutine: a bare send statement, or a select send with neither a
// default nor an alternative receive to escape through. Function
// literals and go statements are skipped — they are not the
// dispatcher's blocking behaviour.
func checkBlockingSends(p *Pass, body *ast.BlockStmt) {
	report := func(n ast.Node) {
		line := p.Pkg.Fset.Position(n.Pos()).Line
		if directiveAtLine(p, "sendguard:ok", line) {
			return
		}
		p.Reportf(n.Pos(),
			"blocking channel send on a protocol dispatch path: a slow consumer stalls the dispatcher and the peer behind it; use select with default or a timeout (//sendguard:ok <reason> to waive)")
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			hasEscape := false
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					hasEscape = true // default: the send cannot block
					continue
				}
				if _, isSend := cc.Comm.(*ast.SendStmt); !isSend {
					hasEscape = true // a receive alternative bounds the wait
				}
			}
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if send, isSend := cc.Comm.(*ast.SendStmt); isSend && !hasEscape {
					report(send)
				}
				for _, s := range cc.Body {
					ast.Inspect(s, visit)
				}
			}
			return false
		case *ast.SendStmt:
			report(n)
		}
		return true
	}
	ast.Inspect(body, visit)
}
