package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// GoroGuard pins the goroutine-lifecycle discipline the daemons
// follow: every `go` statement in an internal/ package must have a
// reachable shutdown path, or the pool leaks a goroutine per
// start/stop cycle — exactly what the EventLoop, DeltaAdvertiser and
// negotiator-standby teardown tests guard dynamically. A spawn is
// accepted when:
//
//   - the spawning function registers with a sync.WaitGroup (the
//     lifecycle owner joins it on Close/Stop), or
//   - the spawned body can be shut down from outside: it receives from
//     a channel, ranges over one, or selects (a closed done/subscription
//     channel unblocks it), or it watches a context.
//
// A spawn whose body the analyzer cannot see (a method value from
// another module, http.Server.Serve) is skipped — the owning package
// is responsible for its teardown. `//goroguard:ok <reason>` on the
// `go` statement's line waives a finding.
var GoroGuard = &Analyzer{
	Name:      "goroguard",
	Doc:       "every go statement in internal/ needs a reachable shutdown path: WaitGroup registration or a done/context signal in the body",
	SkipTests: true,
	Run:       runGoroGuard,
}

func runGoroGuard(p *Pass) {
	dir := filepath.ToSlash(p.Pkg.Dir)
	if !strings.Contains(dir, "internal/") {
		return
	}
	info := p.Pkg.Info
	if info == nil {
		return
	}
	cg := p.Prog.CallGraph()
	for _, decl := range p.File.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		registersWG := callsWaitGroupAdd(info, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if registersWG {
				return true
			}
			body := spawnedBody(info, cg, gs)
			if body == nil {
				// Unresolvable target (stdlib method value, function
				// value): nothing provable either way.
				return true
			}
			if hasShutdownSignal(info, body) {
				return true
			}
			line := p.Pkg.Fset.Position(gs.Pos()).Line
			if directiveAtLine(p, "goroguard:ok", line) {
				return true
			}
			p.Reportf(gs.Pos(),
				"goroutine has no reachable shutdown path: register with the owner's WaitGroup or watch a done channel/context in the body (//goroguard:ok <reason> to waive)")
			return true
		})
	}
}

// callsWaitGroupAdd reports whether the body calls Add on a
// sync.WaitGroup — the spawning side of the lifecycle-owner handshake.
func callsWaitGroupAdd(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || !fromPkg(fn, "sync") || fn.Name() != "Add" {
			return !found
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			return !found
		}
		if named := namedOf(sig.Recv().Type()); named != nil && named.Obj().Name() == "WaitGroup" {
			found = true
		}
		return !found
	})
	return found
}

// spawnedBody resolves the code the go statement runs: a function
// literal's body, or the declaration body of a statically resolved
// module function. Nil when the target is dynamic or out of module.
func spawnedBody(info *types.Info, cg *CallGraph, gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := StaticCallee(info, gs.Call); fn != nil {
		if decl := cg.Decl(fn); decl != nil {
			return decl.Body
		}
	}
	return nil
}

// hasShutdownSignal reports whether the spawned body can observe a
// shutdown from outside: any channel receive, channel range, or select
// (a closed channel unblocks all three), or a context.Context
// reference (ctx.Done, ctx.Err). Nested function literals count — the
// signal is still inside the spawned goroutine's code.
func hasShutdownSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil {
				if named := namedOf(obj.Type()); named != nil &&
					named.Obj().Name() == "Context" && fromPkg(named.Obj(), "context") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
