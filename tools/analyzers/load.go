package analyzers

// The typed loader: parse + type-check the module's packages with
// nothing but the standard library. Module-internal imports
// ("repro/...") are resolved recursively against the module root;
// standard-library imports are type-checked from $GOROOT source by
// go/importer's source importer (the gc export-data importer stopped
// working when Go 1.20 removed the pre-compiled stdlib). One process
// shares a single loader, so the stdlib is checked once no matter how
// many fixture packages or repo-wide runs a test binary performs.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// loader owns the shared FileSet, the stdlib importer and the cache of
// type-checked module packages.
type loader struct {
	mu     sync.Mutex
	fset   *token.FileSet
	root   string // module root directory (holds go.mod)
	module string // module path from go.mod
	std    types.Importer
	pkgs   map[string]*Package // module packages by import path
	ext    map[string]*Package // external test packages by import path
	active map[string]bool     // import-cycle guard
}

var (
	sharedLoaderOnce sync.Once
	sharedLoader     *loader
	sharedLoaderErr  error
)

// getLoader returns the process-wide loader, locating the module root
// by walking up from the working directory to the nearest go.mod.
func getLoader() (*loader, error) {
	sharedLoaderOnce.Do(func() {
		dir, err := os.Getwd()
		if err != nil {
			sharedLoaderErr = err
			return
		}
		for {
			if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
				break
			}
			parent := filepath.Dir(dir)
			if parent == dir {
				sharedLoaderErr = fmt.Errorf("no go.mod found above working directory")
				return
			}
			dir = parent
		}
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err != nil {
			sharedLoaderErr = err
			return
		}
		module := ""
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if rest, ok := strings.CutPrefix(line, "module "); ok {
				module = strings.TrimSpace(rest)
				break
			}
		}
		if module == "" {
			sharedLoaderErr = fmt.Errorf("%s/go.mod declares no module", dir)
			return
		}
		fset := token.NewFileSet()
		sharedLoader = &loader{
			fset:   fset,
			root:   dir,
			module: module,
			std:    importer.ForCompiler(fset, "source", nil),
			pkgs:   map[string]*Package{},
			ext:    map[string]*Package{},
			active: map[string]bool{},
		}
	})
	return sharedLoader, sharedLoaderErr
}

// pathFor maps a directory inside the module to its import path.
func (l *loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module root %s", dir, l.root)
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module import path back to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// isModulePath reports whether path names a package of this module.
func (l *loader) isModulePath(path string) bool {
	return path == l.module || strings.HasPrefix(path, l.module+"/")
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// imports resolves one import for a package being checked: unsafe and
// the stdlib go to the source importer, module paths recurse into the
// loader.
func (l *loader) imports(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("package %s did not type-check", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// parseDir parses every .go file directly inside dir, split into the
// primary package's files (non-test plus in-package _test.go) and the
// external test package's files (package foo_test).
func (l *loader) parseDir(dir string) (primary, external []File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []File
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, File{Path: path, Ast: f, Test: strings.HasSuffix(ent.Name(), "_test.go")})
	}
	// The primary package name is the one the non-test files declare.
	name := ""
	for _, f := range files {
		if !f.Test {
			name = f.Ast.Name.Name
			break
		}
	}
	for _, f := range files {
		if f.Test && (name == "" || f.Ast.Name.Name != name) {
			external = append(external, f)
		} else {
			primary = append(primary, f)
		}
	}
	return primary, external, nil
}

// check type-checks one file set as a package. Type errors are
// collected, not fatal: the analyzers still run on a partially typed
// package, and the driver surfaces the errors separately.
func (l *loader) check(path string, files []File) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer: importerFunc(l.imports),
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.Ast
	}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if err != nil && len(errs) == 0 {
		errs = append(errs, err)
	}
	return tpkg, info, errs
}

// load type-checks the module package at the given import path
// (memoized). The primary package includes its in-package test files:
// they type-check together exactly as `go test` compiles them, and the
// analyzers legitimately inspect them (msgswitch runs on tests).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	dir := l.dirFor(path)
	primary, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Path: path, Fset: l.fset, Files: primary}
	if len(primary) > 0 {
		pkg.Name = primary[0].Ast.Name.Name
		pkg.Types, pkg.Info, pkg.TypeErrors = l.check(path, primary)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loadExternalTest type-checks dir's package foo_test files, if any,
// as their own package (they import the primary one).
func (l *loader) loadExternalTest(path string) (*Package, error) {
	if pkg, ok := l.ext[path]; ok {
		return pkg, nil
	}
	dir := l.dirFor(path)
	_, external, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(external) == 0 {
		l.ext[path] = nil
		return nil, nil
	}
	pkg := &Package{Dir: dir, Path: path + ".test", Fset: l.fset, Files: external}
	pkg.Name = external[0].Ast.Name.Name
	pkg.Types, pkg.Info, pkg.TypeErrors = l.check(pkg.Path, external)
	l.ext[path] = pkg
	return pkg, nil
}

// Load walks each root recursively, type-checks every package
// directory found, and returns them (with their external test
// packages) as one Program. A trailing "/..." on a root is accepted
// and redundant: the walk always recurses. testdata, vendor, hidden
// and underscore directories are skipped, mirroring the go tool's
// build rules — fixture packages are loaded only when a root points
// directly at them.
func Load(roots []string) (*Program, error) {
	l, err := getLoader()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	var dirs []string
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs = append(dirs, path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	prog := &Program{Fset: l.fset, loader: l}
	seen := map[string]bool{}
	for _, dir := range dirs {
		path, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		if seen[path] {
			continue
		}
		seen[path] = true
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if len(pkg.Files) == 0 {
			continue
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		ext, err := l.loadExternalTest(path)
		if err != nil {
			return nil, err
		}
		if ext != nil {
			prog.Pkgs = append(prog.Pkgs, ext)
		}
	}
	return prog, nil
}

// LoadDir loads the single package directory dir (plus any external
// test package it carries) — the analyzertest entry point for fixture
// packages, which the recursive walk deliberately skips.
func LoadDir(dir string) (*Program, error) {
	return Load([]string{dir + "/"})
}

// allModulePackages returns every module package the loader has
// type-checked — roots and dependencies alike — in stable path order.
// The call graph and reachability analyses build over this set.
func (prog *Program) allModulePackages() []*Package {
	l := prog.loader
	var out []*Package
	for _, pkg := range l.pkgs {
		if len(pkg.Files) > 0 {
			out = append(out, pkg)
		}
	}
	for _, pkg := range l.ext {
		if pkg != nil && len(pkg.Files) > 0 {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
