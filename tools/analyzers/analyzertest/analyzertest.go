// Package analyzertest runs an analyzer over a fixture directory and
// checks its findings against `// want "regexp"` comments, the same
// convention golang.org/x/tools/go/analysis/analysistest uses (rebuilt
// here because the repo carries no external dependencies). A want
// comment expects exactly one finding on its line whose message
// matches the double-quoted regular expression; findings without a
// want comment, and want comments without a finding, both fail the
// test.
//
// Fixtures are loaded through the typed framework, so they must
// type-check: a fixture with type errors fails the test outright.
// That is deliberate — the analyzers resolve by type identity, and an
// ill-typed fixture would silently exercise nothing.
package analyzertest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/tools/analyzers"
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run applies a to the fixture package in dir and compares findings
// with the fixture's want comments.
func Run(t *testing.T, a *analyzers.Analyzer, dir string) {
	t.Helper()
	prog, err := analyzers.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	check(t, a, prog)
}

// RunDirs loads several fixture directories as one program — for
// analyzers whose facts cross package boundaries (determguard's
// reachability from a driver package into the code it replays) — and
// compares findings across all of them with the want comments.
func RunDirs(t *testing.T, a *analyzers.Analyzer, dirs ...string) {
	t.Helper()
	prog, err := analyzers.Load(dirs)
	if err != nil {
		t.Fatalf("load %v: %v", dirs, err)
	}
	check(t, a, prog)
}

func check(t *testing.T, a *analyzers.Analyzer, prog *analyzers.Program) {
	t.Helper()
	files := 0
	for _, pkg := range prog.Pkgs {
		files += len(pkg.Files)
		for _, err := range pkg.TypeErrors {
			t.Errorf("fixture does not type-check: %v", err)
		}
	}
	if files == 0 {
		t.Fatal("no Go files in fixture")
	}
	if t.Failed() {
		t.FailNow()
	}
	expects, err := wants(prog)
	if err != nil {
		t.Fatal(err)
	}

	findings := analyzers.Run([]*analyzers.Analyzer{a}, prog)
	for _, f := range findings {
		matched := false
		for _, exp := range expects {
			if exp.met || exp.file != f.Pos.Filename || exp.line != f.Pos.Line {
				continue
			}
			if !exp.re.MatchString(f.Message) {
				t.Errorf("%s: finding %q does not match want %q", f.Pos, f.Message, exp.re)
			}
			exp.met = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, exp := range expects {
		if !exp.met {
			t.Errorf("%s:%d: no finding matching want %q", exp.file, exp.line, exp.re)
		}
	}
}

// wants collects the fixture's expectations from its comments.
func wants(prog *analyzers.Program) ([]*expectation, error) {
	var out []*expectation
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Ast.Comments {
				for _, c := range group.List {
					text := strings.TrimPrefix(c.Text, "//")
					idx := strings.Index(text, "want ")
					if idx < 0 {
						continue
					}
					quoted := strings.TrimSpace(text[idx+len("want "):])
					pat, err := strconv.Unquote(quoted)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want comment %q: %v", f.Path, c.Text, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", f.Path, pat, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}
