package analyzers

// A lightweight static call graph over the loaded module packages.
// Edges are resolved through types.Info.Uses/Selections, so calls
// follow across files and packages regardless of import aliasing.
// Interface method calls get CHA-lite edges: every concrete method of
// a module type that implements the interface is a possible callee.
// FuncLit bodies are attributed to their enclosing declaration (a
// closure's calls are the encloser's calls — an over-approximation
// that errs toward reporting). Edges made under a `go` statement are
// classified async: analyzers that care about what blocks the *caller*
// (sendguard) traverse sync edges only, analyzers that care about what
// code *executes* (determguard) traverse all edges.

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph holds static call edges for every function declared in the
// loaded module packages.
type CallGraph struct {
	decls map[*types.Func]*ast.FuncDecl
	pkgOf map[*types.Func]*Package
	sync  map[*types.Func][]*types.Func // edges not crossing a go statement
	all   map[*types.Func][]*types.Func // sync edges plus goroutine spawns
}

// CallGraph builds (once) and returns the program's call graph.
func (prog *Program) CallGraph() *CallGraph {
	if prog.cg != nil {
		return prog.cg
	}
	cg := &CallGraph{
		decls: map[*types.Func]*ast.FuncDecl{},
		pkgOf: map[*types.Func]*Package{},
		sync:  map[*types.Func][]*types.Func{},
		all:   map[*types.Func][]*types.Func{},
	}
	pkgs := prog.allModulePackages()

	// Index every concrete method declared in the module by name, for
	// CHA resolution of interface calls.
	methodsByName := map[string][]*types.Func{}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				cg.decls[fn] = fd
				cg.pkgOf[fn] = pkg
				if fd.Recv != nil {
					methodsByName[fn.Name()] = append(methodsByName[fn.Name()], fn)
				}
			}
		}
	}

	addEdge := func(from, to *types.Func, async bool) {
		if !async {
			cg.sync[from] = append(cg.sync[from], to)
		}
		cg.all[from] = append(cg.all[from], to)
	}

	// resolve expands one callee into its concrete targets: a concrete
	// function stays itself; an interface method fans out to every
	// module method implementing it.
	resolve := func(fn *types.Func) []*types.Func {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return []*types.Func{fn}
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			return []*types.Func{fn}
		}
		var out []*types.Func
		for _, m := range methodsByName[fn.Name()] {
			recv := m.Type().(*types.Signature).Recv().Type()
			if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
				out = append(out, m)
			}
		}
		return out
	}

	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		info := pkg.Info
		for _, f := range pkg.Files {
			for _, decl := range f.Ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				from, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				var walk func(n ast.Node, async bool)
				walk = func(n ast.Node, async bool) {
					ast.Inspect(n, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.GoStmt:
							// The spawned call and everything it closes
							// over run on another goroutine.
							walk(n.Call, true)
							return false
						case *ast.CallExpr:
							if callee := StaticCallee(info, n); callee != nil {
								for _, to := range resolve(callee) {
									addEdge(from, to, async)
								}
							}
						}
						return true
					})
				}
				walk(fd.Body, false)
			}
		}
	}
	prog.cg = cg
	return cg
}

// StaticCallee resolves the function a call expression statically
// invokes, or nil for dynamic calls (function values, builtins,
// conversions).
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Decl returns the syntax of fn's declaration, or nil if fn is not
// declared in a loaded module package.
func (cg *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return cg.decls[fn] }

// PackageOf returns the loaded package declaring fn, or nil.
func (cg *CallGraph) PackageOf(fn *types.Func) *Package { return cg.pkgOf[fn] }

// Funcs returns every function declared in the module, in stable
// (package path, position) order.
func (cg *CallGraph) Funcs() []*types.Func {
	out := make([]*types.Func, 0, len(cg.decls))
	for fn := range cg.decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := cg.pkgOf[out[i]], cg.pkgOf[out[j]]
		if pi.Path != pj.Path {
			return pi.Path < pj.Path
		}
		return cg.decls[out[i]].Pos() < cg.decls[out[j]].Pos()
	})
	return out
}

// Reachable returns the set of functions reachable from roots along
// call edges. syncOnly restricts traversal to edges that keep the
// caller blocked (i.e. excludes goroutine spawns).
func (cg *CallGraph) Reachable(roots []*types.Func, syncOnly bool) map[*types.Func]bool {
	edges := cg.all
	if syncOnly {
		edges = cg.sync
	}
	seen := map[*types.Func]bool{}
	stack := append([]*types.Func(nil), roots...)
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		stack = append(stack, edges[fn]...)
	}
	return seen
}
