package analyzers

// Typed resolution helpers shared by the analyzers: object identity
// instead of identifier text, so aliased imports, dot imports and type
// aliases cannot dodge a check.

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// use resolves an identifier to the object it refers to, or nil.
func (p *Pass) use(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.Uses[id]
}

// isPkgObj reports whether obj is the named top-level object of the
// package with exactly the given import path (stdlib packages).
func isPkgObj(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// fromPkg reports whether obj belongs to the package with the given
// import path.
func fromPkg(obj types.Object, pkgPath string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// pkgScoped reports whether obj is declared at package scope — a
// top-level function, type, var or const, as opposed to a method or
// field (nodial flags `net.Dial`, not every method on a net type).
func pkgScoped(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// fromProtocol reports whether obj belongs to the wire-protocol
// package. Fixture packages import it under the real module path, so
// matching on the path suffix keeps fixtures and the live tree on the
// same rule.
func fromProtocol(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/protocol")
}

// namedOf unwraps aliases and one level of pointer and returns the
// named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// isEnvelopeType reports whether t is protocol.Envelope (through any
// alias), optionally behind one pointer.
func isEnvelopeType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Name() == "Envelope" && fromProtocol(named.Obj())
}

// typeOf returns the type of e, or nil.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.Types[e].Type
}

// lastObj resolves the trailing object of a receiver chain: the
// variable for `mu`, the field for `s.d.mu`, unwrapping parens,
// unary operators and index expressions. Returns nil for anything it
// cannot pin to one object.
func lastObj(info *types.Info, e ast.Expr) types.Object {
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[n]
	case *ast.SelectorExpr:
		return info.Uses[n.Sel]
	case *ast.UnaryExpr:
		return lastObj(info, n.X)
	case *ast.IndexExpr:
		return lastObj(info, n.X)
	}
	return nil
}

// msgConstName resolves an expression to the canonical protocol
// message-type constant name (TypeMatch, TypeAck, ...) by constant
// value, or "". Identity is by value and type, so dot imports and
// local constant aliases resolve to the same canonical name the
// analyzers' vocabulary lists use.
func (p *Pass) msgConstName(e ast.Expr) string {
	if p.Pkg.Info == nil {
		return ""
	}
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return ""
	}
	named := namedOf(tv.Type)
	if named == nil || named.Obj().Name() != "MsgType" || !fromProtocol(named.Obj()) {
		return ""
	}
	return p.Prog.msgConstCanon(named.Obj().Pkg())[tv.Value.ExactString()]
}

// msgConstCanon builds (once) the constant-value -> canonical-name
// table from the protocol package's own scope.
func (prog *Program) msgConstCanon(protoPkg *types.Package) map[string]string {
	if prog.msgConsts != nil {
		return prog.msgConsts
	}
	canon := map[string]string{}
	scope := protoPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Type") {
			continue
		}
		named := namedOf(c.Type())
		if named == nil || named.Obj().Name() != "MsgType" {
			continue
		}
		canon[c.Val().ExactString()] = name
	}
	prog.msgConsts = canon
	return canon
}

// constValOf returns the constant value of e, or nil.
func (p *Pass) constValOf(e ast.Expr) constant.Value {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.Types[e].Value
}

// writtenQualifier renders the package qualifier as the file wrote it:
// the selector base for `stdnet.Dial`, or fallback (the real package
// name) for a dot import's bare identifier.
func writtenQualifier(e ast.Expr, fallback string) string {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return fallback
}

// enclosingFuncs returns, for each file function declaration, its
// *types.Func — the bridge from per-file syntax to call-graph facts.
func (p *Pass) fileFuncs() map[*ast.FuncDecl]*types.Func {
	out := map[*ast.FuncDecl]*types.Func{}
	if p.Pkg.Info == nil {
		return out
	}
	for _, decl := range p.File.Ast.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fd] = fn
			}
		}
	}
	return out
}
