package analyzers

import (
	"go/ast"
	"path/filepath"
	"strconv"
	"strings"
)

// NoDial enforces the transport invariant introduced with
// internal/netx: every outbound connection goes through a netx.Dialer
// so it inherits the pool-wide connect deadline, retry policy and
// fault injection. A raw net.Dial hangs forever on a dead peer and is
// invisible to the chaos suite — exactly the failure mode the wire
// layer was hardened against.
var NoDial = &Analyzer{
	Name:      "nodial",
	Doc:       "flags direct net dialing outside internal/netx; outbound connections must use the netx dialer",
	SkipTests: true,
	Run:       runNoDial,
}

// dialNames are the package-net identifiers that open (or configure
// opening) an outbound connection. Listening-side names (Listen,
// Listener, Conn) stay legal everywhere.
var dialNames = map[string]bool{
	"Dial":        true,
	"DialTimeout": true,
	"DialTCP":     true,
	"DialUDP":     true,
	"DialIP":      true,
	"DialUnix":    true,
	"Dialer":      true,
}

func runNoDial(p *Pass) {
	if strings.HasSuffix(filepath.ToSlash(p.Pkg.Dir), "internal/netx") {
		return
	}
	alias := importName(p.File.Ast, "net")
	if alias == "" {
		return
	}
	ast.Inspect(p.File.Ast, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != alias || !dialNames[sel.Sel.Name] {
			return true
		}
		p.Reportf(sel.Pos(),
			"%s.%s bypasses internal/netx: dial through netx.Dialer so the connection gets deadlines, retries and fault injection",
			alias, sel.Sel.Name)
		return true
	})
}

// importName returns the identifier under which the file imports path,
// or "" if it does not. A dot or blank import returns "" — neither can
// appear as a selector base.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}
