package analyzers

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// NoDial enforces the transport invariant introduced with
// internal/netx: every outbound connection goes through a netx.Dialer
// so it inherits the pool-wide connect deadline, retry policy and
// fault injection. A raw net.Dial hangs forever on a dead peer and is
// invisible to the chaos suite — exactly the failure mode the wire
// layer was hardened against.
//
// Resolution is by type identity: any reference to a dialing object of
// package net is flagged no matter how the import is spelled — an
// aliased import, a dot import, or a helper re-export cannot dodge it.
var NoDial = &Analyzer{
	Name:      "nodial",
	Doc:       "flags direct net dialing outside internal/netx; outbound connections must use the netx dialer",
	SkipTests: true,
	Run:       runNoDial,
}

// dialNames are the package-net identifiers that open (or configure
// opening) an outbound connection. Listening-side names (Listen,
// Listener, Conn) stay legal everywhere.
var dialNames = map[string]bool{
	"Dial":        true,
	"DialTimeout": true,
	"DialTCP":     true,
	"DialUDP":     true,
	"DialIP":      true,
	"DialUnix":    true,
	"Dialer":      true,
}

func runNoDial(p *Pass) {
	if strings.HasSuffix(filepath.ToSlash(p.Pkg.Dir), "internal/netx") {
		return
	}
	// Selector uses report once at the selector; remember their Sel
	// idents so the bare-identifier walk below does not re-report them.
	inSelector := map[*ast.Ident]bool{}
	ast.Inspect(p.File.Ast, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			inSelector[n.Sel] = true
			obj := p.use(n.Sel)
			if fromPkg(obj, "net") && pkgScoped(obj) && dialNames[obj.Name()] {
				p.Reportf(n.Pos(),
					"%s.%s bypasses internal/netx: dial through netx.Dialer so the connection gets deadlines, retries and fault injection",
					writtenQualifier(n, "net"), obj.Name())
			}
		case *ast.Ident:
			// A dot import leaves no selector: the bare identifier
			// resolves straight into package net.
			obj := p.use(n)
			if !inSelector[n] && fromPkg(obj, "net") && pkgScoped(obj) && dialNames[obj.Name()] {
				p.Reportf(n.Pos(),
					"net.%s bypasses internal/netx: dial through netx.Dialer so the connection gets deadlines, retries and fault injection",
					obj.Name())
			}
		}
		return true
	})
}
