package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockGuard flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: an outbound dial, a protocol round-trip, or a
// channel send. A lock held across network I/O couples every
// contender's latency to a peer's responsiveness — the collector
// serving a query cannot afford to stall behind a slow advertiser —
// and a blocking send under a lock is a classic self-deadlock when the
// reader needs the same lock to drain. Sends inside a select with a
// default case are exempt: they cannot block.
//
// The walk is per-function and statement-ordered: a receiver spelled X
// is considered held between X.Lock()/X.RLock() and
// X.Unlock()/X.RUnlock() in statement order, and a deferred unlock
// keeps X held until return (that is the point: everything after the
// defer runs under the lock). Function literals and go statements
// start with no locks held. Lock recognition and blocking-call
// classification are typed — only real sync.(RW)Mutex/Locker methods
// transition the held set, only real package-net dials and protocol
// round-trips classify as blocking — and calls to same-package helpers
// are followed across files: a dial buried in a helper in another file
// is still a dial under the lock. `//lockguard:ok <reason>` on the
// offending line waives a finding.
var LockGuard = &Analyzer{
	Name:      "lockguard",
	Doc:       "flags channel sends and netx/protocol/net I/O while a sync mutex is held, following same-package helper calls",
	SkipTests: true,
	Run:       runLockGuard,
}

// lockguardProtoOps are the protocol package calls that block on a
// peer's socket.
var lockguardProtoOps = map[string]bool{"Write": true, "Read": true}

func runLockGuard(p *Pass) {
	g := &lockGuard{pass: p}
	for _, decl := range p.File.Ast.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		g.stmts(fn.Body.List, map[string]bool{})
	}
}

type lockGuard struct {
	pass *Pass
}

// report emits a finding unless a //lockguard:ok directive waives it.
func (g *lockGuard) report(pos ast.Node, format string, args ...any) {
	line := g.pass.Pkg.Fset.Position(pos.Pos()).Line
	if directiveAtLine(g.pass, "lockguard:ok", line) {
		return
	}
	g.pass.Reportf(pos.Pos(), format, args...)
}

// heldNames renders the held set for a finding message.
func heldNames(held map[string]bool) string {
	name := ""
	for k := range held {
		if name == "" || k < name {
			name = k
		}
	}
	return name
}

// stmts walks a statement list in order, threading the held-lock set.
func (g *lockGuard) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		g.stmt(s, held)
	}
}

// copyHeld forks the held set for a branch.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func (g *lockGuard) stmt(s ast.Stmt, held map[string]bool) {
	switch n := s.(type) {
	case *ast.ExprStmt:
		g.expr(n.X, held)
	case *ast.SendStmt:
		g.expr(n.Chan, held)
		g.expr(n.Value, held)
		if len(held) > 0 {
			g.report(n,
				"channel send while %s is held: a blocked receiver deadlocks every contender of the lock", heldNames(held))
		}
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			g.expr(e, held)
		}
		for _, e := range n.Lhs {
			g.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						g.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			g.expr(e, held)
		}
	case *ast.DeferStmt:
		// A deferred unlock releases only at return, so the lock stays
		// held for the rest of the function — modeled by not touching
		// the held set here. The deferred call itself runs outside the
		// walked region; only its arguments are evaluated now.
		for _, arg := range n.Call.Args {
			g.expr(arg, held)
		}
	case *ast.GoStmt:
		// A spawned goroutine does not hold the caller's locks.
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			g.stmts(lit.Body.List, map[string]bool{})
		}
		for _, arg := range n.Call.Args {
			g.expr(arg, held)
		}
	case *ast.BlockStmt:
		g.stmts(n.List, held)
	case *ast.IfStmt:
		if n.Init != nil {
			g.stmt(n.Init, held)
		}
		g.expr(n.Cond, held)
		g.stmts(n.Body.List, copyHeld(held))
		if n.Else != nil {
			g.stmt(n.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if n.Init != nil {
			g.stmt(n.Init, held)
		}
		if n.Cond != nil {
			g.expr(n.Cond, held)
		}
		g.stmts(n.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		g.expr(n.X, held)
		g.stmts(n.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if n.Init != nil {
			g.stmt(n.Init, held)
		}
		if n.Tag != nil {
			g.expr(n.Tag, held)
		}
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				g.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				g.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range n.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// A send in a select with a default case cannot block.
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault && len(held) > 0 {
				g.report(send,
					"channel send while %s is held: a blocked receiver deadlocks every contender of the lock", heldNames(held))
			}
			g.stmts(cc.Body, copyHeld(held))
		}
	case *ast.LabeledStmt:
		g.stmt(n.Stmt, held)
	}
}

// expr scans one expression: lock-state transitions, blocking calls,
// helper calls that block transitively, and function literals (which
// start lock-free).
func (g *lockGuard) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	info := g.pass.Pkg.Info
	ast.Inspect(e, func(n ast.Node) bool {
		switch c := n.(type) {
		case *ast.FuncLit:
			g.stmts(c.Body.List, map[string]bool{})
			return false
		case *ast.CallExpr:
			if name, method, isSync := syncLockMethod(info, c); isSync {
				switch {
				case method == "Lock" || method == "RLock":
					if len(c.Args) == 0 {
						held[name] = true
					}
				case method == "Unlock" || method == "RUnlock":
					delete(held, name)
				}
			}
			if len(held) > 0 {
				if msg := blockingCall(info, c); msg != "" {
					g.report(c,
						"%s while %s is held: network latency becomes lock hold time for every contender", msg, heldNames(held))
				} else if callee, op := g.blockingHelper(c); callee != "" {
					g.report(c,
						"call to %s, which performs %s, while %s is held: network latency becomes lock hold time for every contender (//lockguard:ok <reason> to waive)",
						callee, op, heldNames(held))
				}
			}
		}
		return true
	})
}

// syncLockMethod recognizes a Lock/RLock/Unlock/RUnlock call on a real
// sync.(RW)Mutex or sync.Locker — by method identity, so a mutex
// reached through struct fields or an embedded field still counts, and
// an unrelated type's Lock method does not.
func syncLockMethod(info *types.Info, c *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := c.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if !fromPkg(info.Uses[sel.Sel], "sync") {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

// blockingCall classifies a call as directly network-blocking and
// names it, or returns "". Classification is by object identity:
// package-net dials and protocol read/write round-trips resolve
// through any import spelling; a Dial* method on any receiver
// (netx.Dialer, a collector client's embedded dialer, ...) opens an
// outbound connection by repo convention.
func blockingCall(info *types.Info, c *ast.CallExpr) string {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := info.Uses[sel.Sel]
	if pkgScoped(obj) {
		if fromPkg(obj, "net") && dialNames[obj.Name()] {
			return fmt.Sprintf("%s.%s", writtenQualifier(sel, "net"), obj.Name())
		}
		if fromProtocol(obj) && lockguardProtoOps[obj.Name()] {
			return fmt.Sprintf("%s.%s round-trip", writtenQualifier(sel, "protocol"), obj.Name())
		}
	}
	switch sel.Sel.Name {
	case "Dial", "DialContext", "DialTotal":
		return exprString(sel.X) + "." + sel.Sel.Name
	}
	return ""
}

// blockingHelper reports whether the call statically resolves to a
// same-package function whose body (transitively, still within the
// package) performs a blocking operation. Returns the callee's name
// and a description of the operation, or "". This is the cross-file
// half of the invariant: the old single-file matcher could not see a
// dial two files away.
func (g *lockGuard) blockingHelper(c *ast.CallExpr) (callee, op string) {
	fn := StaticCallee(g.pass.Pkg.Info, c)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() != g.pass.Pkg.Types {
		return "", ""
	}
	op = g.pass.Prog.blockingSummary(fn, map[*types.Func]bool{})
	if op == "" {
		return "", ""
	}
	return fn.Name(), op
}

// blockingSummary computes (memoized) whether fn's body performs a
// blocking operation — a direct blocking call, a bare channel send, or
// a call to another same-package function that does — and describes
// it. Function literals and go statements inside fn are skipped: what
// a spawned goroutine or stored closure does is not charged to fn's
// caller.
func (prog *Program) blockingSummary(fn *types.Func, visiting map[*types.Func]bool) string {
	if prog.blockSumm == nil {
		prog.blockSumm = map[*types.Func]string{}
	}
	if s, ok := prog.blockSumm[fn]; ok {
		return s
	}
	if visiting[fn] {
		return ""
	}
	visiting[fn] = true
	cg := prog.CallGraph()
	decl := cg.Decl(fn)
	pkg := cg.PackageOf(fn)
	summary := ""
	if decl != nil && decl.Body != nil && pkg != nil && pkg.Info != nil {
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				if summary != "" {
					return false
				}
				switch n := n.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					return false
				case *ast.SelectStmt:
					// Sends under a default-carrying select cannot block.
					for _, c := range n.Body.List {
						if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
							return false
						}
					}
				case *ast.SendStmt:
					summary = "a channel send"
				case *ast.CallExpr:
					if msg := blockingCall(pkg.Info, n); msg != "" {
						summary = msg
						return false
					}
					if callee := StaticCallee(pkg.Info, n); callee != nil && callee.Pkg() == pkg.Types {
						if s := prog.blockingSummary(callee, visiting); s != "" {
							summary = s
							return false
						}
					}
				}
				return true
			})
		}
		walk(decl.Body)
	}
	prog.blockSumm[fn] = summary
	return summary
}

// exprString renders simple receiver chains (a, a.b, a.b.c) for
// held-set keys and messages; anything more exotic collapses to a
// stable placeholder so Lock/Unlock on the same expression still pair.
func exprString(e ast.Expr) string {
	switch n := e.(type) {
	case *ast.Ident:
		return n.Name
	case *ast.SelectorExpr:
		return exprString(n.X) + "." + n.Sel.Name
	case *ast.ParenExpr:
		return exprString(n.X)
	case *ast.UnaryExpr:
		return exprString(n.X)
	case *ast.IndexExpr:
		return exprString(n.X) + "[...]"
	case *ast.CallExpr:
		return exprString(n.Fun) + "()"
	default:
		return "mutex"
	}
}
