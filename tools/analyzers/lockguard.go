package analyzers

import (
	"fmt"
	"go/ast"
)

// LockGuard flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: an outbound dial, a protocol round-trip, or a
// channel send. A lock held across network I/O couples every
// contender's latency to a peer's responsiveness — the collector
// serving a query cannot afford to stall behind a slow advertiser —
// and a blocking send under a lock is a classic self-deadlock when the
// reader needs the same lock to drain. Sends inside a select with a
// default case are exempt: they cannot block.
//
// The check is syntactic and per-function: a receiver spelled X is
// considered held between X.Lock()/X.RLock() and X.Unlock()/X.RUnlock()
// in statement order, and a deferred unlock keeps X held until return
// (that is the point: everything after the defer runs under the lock).
// Function literals and go statements start with no locks held.
var LockGuard = &Analyzer{
	Name:      "lockguard",
	Doc:       "flags channel sends and netx/protocol/net I/O while a sync mutex is held",
	SkipTests: true,
	Run:       runLockGuard,
}

// lockguardProtoOps are the protocol package calls that block on a
// peer's socket.
var lockguardProtoOps = map[string]bool{"Write": true, "Read": true}

func runLockGuard(p *Pass) {
	g := &lockGuard{
		pass:       p,
		netAlias:   importName(p.File.Ast, "net"),
		protoAlias: importName(p.File.Ast, "repro/internal/protocol"),
	}
	for _, decl := range p.File.Ast.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		g.stmts(fn.Body.List, map[string]bool{})
	}
}

type lockGuard struct {
	pass       *Pass
	netAlias   string
	protoAlias string
}

// heldNames renders the held set for a finding message.
func heldNames(held map[string]bool) string {
	name := ""
	for k := range held {
		if name == "" || k < name {
			name = k
		}
	}
	return name
}

// stmts walks a statement list in order, threading the held-lock set.
func (g *lockGuard) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		g.stmt(s, held)
	}
}

// copyHeld forks the held set for a branch.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func (g *lockGuard) stmt(s ast.Stmt, held map[string]bool) {
	switch n := s.(type) {
	case *ast.ExprStmt:
		g.expr(n.X, held)
	case *ast.SendStmt:
		g.expr(n.Chan, held)
		g.expr(n.Value, held)
		if len(held) > 0 {
			g.pass.Reportf(n.Arrow,
				"channel send while %s is held: a blocked receiver deadlocks every contender of the lock", heldNames(held))
		}
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			g.expr(e, held)
		}
		for _, e := range n.Lhs {
			g.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						g.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			g.expr(e, held)
		}
	case *ast.DeferStmt:
		// A deferred unlock releases only at return, so the lock stays
		// held for the rest of the function — modeled by not touching
		// the held set here. The deferred call itself runs outside the
		// walked region; only its arguments are evaluated now.
		for _, arg := range n.Call.Args {
			g.expr(arg, held)
		}
	case *ast.GoStmt:
		// A spawned goroutine does not hold the caller's locks.
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			g.stmts(lit.Body.List, map[string]bool{})
		}
		for _, arg := range n.Call.Args {
			g.expr(arg, held)
		}
	case *ast.BlockStmt:
		g.stmts(n.List, held)
	case *ast.IfStmt:
		if n.Init != nil {
			g.stmt(n.Init, held)
		}
		g.expr(n.Cond, held)
		g.stmts(n.Body.List, copyHeld(held))
		if n.Else != nil {
			g.stmt(n.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if n.Init != nil {
			g.stmt(n.Init, held)
		}
		if n.Cond != nil {
			g.expr(n.Cond, held)
		}
		g.stmts(n.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		g.expr(n.X, held)
		g.stmts(n.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if n.Init != nil {
			g.stmt(n.Init, held)
		}
		if n.Tag != nil {
			g.expr(n.Tag, held)
		}
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				g.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				g.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range n.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// A send in a select with a default case cannot block.
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault && len(held) > 0 {
				g.pass.Reportf(send.Arrow,
					"channel send while %s is held: a blocked receiver deadlocks every contender of the lock", heldNames(held))
			}
			g.stmts(cc.Body, copyHeld(held))
		}
	case *ast.LabeledStmt:
		g.stmt(n.Stmt, held)
	}
}

// expr scans one expression: lock-state transitions, blocking calls,
// and function literals (which start lock-free).
func (g *lockGuard) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch c := n.(type) {
		case *ast.FuncLit:
			g.stmts(c.Body.List, map[string]bool{})
			return false
		case *ast.CallExpr:
			if name, method, ok := recvMethod(c); ok {
				switch {
				case method == "Lock" || method == "RLock":
					if len(c.Args) == 0 {
						held[name] = true
					}
				case isUnlock(method):
					delete(held, name)
				}
			}
			if len(held) > 0 {
				if msg := g.blockingCall(c); msg != "" {
					g.pass.Reportf(c.Pos(),
						"%s while %s is held: network latency becomes lock hold time for every contender", msg, heldNames(held))
				}
			}
		}
		return true
	})
}

// blockingCall classifies a call as network-blocking and names it, or
// returns "".
func (g *lockGuard) blockingCall(c *ast.CallExpr) string {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if g.netAlias != "" && id.Name == g.netAlias && dialNames[sel.Sel.Name] {
			return fmt.Sprintf("%s.%s", id.Name, sel.Sel.Name)
		}
		if g.protoAlias != "" && id.Name == g.protoAlias && lockguardProtoOps[sel.Sel.Name] {
			return fmt.Sprintf("%s.%s round-trip", id.Name, sel.Sel.Name)
		}
	}
	// A Dial* method on any receiver (netx.Dialer, a collector client's
	// embedded dialer, ...) opens an outbound connection.
	switch sel.Sel.Name {
	case "Dial", "DialContext", "DialTotal":
		return exprString(sel.X) + "." + sel.Sel.Name
	}
	return ""
}

// recvMethod unpacks a method call expression into the rendered
// receiver and the method name.
func recvMethod(c *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := c.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

func isUnlock(method string) bool {
	return method == "Unlock" || method == "RUnlock"
}

// exprString renders simple receiver chains (a, a.b, a.b.c) for
// held-set keys and messages; anything more exotic collapses to a
// stable placeholder so Lock/Unlock on the same expression still pair.
func exprString(e ast.Expr) string {
	switch n := e.(type) {
	case *ast.Ident:
		return n.Name
	case *ast.SelectorExpr:
		return exprString(n.X) + "." + n.Sel.Name
	case *ast.ParenExpr:
		return exprString(n.X)
	case *ast.UnaryExpr:
		return exprString(n.X)
	case *ast.IndexExpr:
		return exprString(n.X) + "[...]"
	case *ast.CallExpr:
		return exprString(n.Fun) + "()"
	default:
		return "mutex"
	}
}
