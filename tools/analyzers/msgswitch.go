package analyzers

import (
	"go/ast"
	"strings"
)

// MsgSwitch enforces exhaustiveness on protocol envelope dispatch: a
// switch that names any protocol.Type* constant either covers every
// message type or carries a default clause. Without one, adding a
// message type to the protocol silently falls through existing
// dispatchers instead of producing an "unhandled type" reply — the
// bug class the TypeError envelope exists to surface.
var MsgSwitch = &Analyzer{
	Name: "msgswitch",
	Doc:  "switches naming protocol message-type constants must have a default clause or cover every type",
	Run:  runMsgSwitch,
}

// ProtocolMsgTypes mirrors the MsgType constants of
// internal/protocol/protocol.go. TestMsgTypeListInSync re-derives the
// list from that file's syntax, so the copy cannot drift.
var ProtocolMsgTypes = []string{
	"TypeAdvertise",
	"TypeInvalidate",
	"TypeUpdateDelta",
	"TypeQuery",
	"TypeQueryReply",
	"TypeMatch",
	"TypeClaim",
	"TypeClaimReply",
	"TypeRelease",
	"TypePreempt",
	"TypeChallenge",
	"TypeChalReply",
	"TypeAck",
	"TypeError",
	"TypeSubmit",
	"TypeSysOpen",
	"TypeSysFd",
	"TypeSysRead",
	"TypeSysData",
	"TypeSysWrite",
	"TypeSysTrunc",
	"TypeSysClose",
	"TypeCkptSave",
	"TypeCkptLoad",
	"TypeCkptData",
	"TypeJobDone",
	"TypeLease",
	"TypeLeaseReply",
}

func runMsgSwitch(p *Pass) {
	known := make(map[string]bool, len(ProtocolMsgTypes))
	for _, name := range ProtocolMsgTypes {
		known[name] = true
	}
	ast.Inspect(p.File.Ast, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		covered := map[string]bool{}
		hasDefault := false
		for _, stmt := range sw.Body.List {
			clause, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if clause.List == nil {
				hasDefault = true
				continue
			}
			for _, e := range clause.List {
				// Constant identity, not spelling: a dot import's bare
				// TypeMatch and a locally aliased constant both resolve
				// to the canonical protocol name.
				if name := p.msgConstName(e); known[name] {
					covered[name] = true
				}
			}
		}
		if len(covered) == 0 || hasDefault || len(covered) == len(ProtocolMsgTypes) {
			return true
		}
		var missing []string
		for _, name := range ProtocolMsgTypes {
			if !covered[name] {
				missing = append(missing, name)
			}
		}
		shown := missing
		suffix := ""
		if len(shown) > 3 {
			shown = shown[:3]
			suffix = " and more"
		}
		p.Reportf(sw.Pos(),
			"switch covers %d of %d protocol message types without a default clause: missing %s%s",
			len(covered), len(ProtocolMsgTypes), strings.Join(shown, ", "), suffix)
		return true
	})
}
