package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetermGuard is the replay-soundness guard for the model checker:
// internal/modelcheck replays real component code under a virtual
// clock and a schedule it owns, and its state fingerprints are only
// meaningful if that code is deterministic. A wall-clock read, a
// global math/rand draw, a time.Sleep, or a map iteration whose order
// escapes into state silently de-soundens every exhaustive-exploration
// result. This analyzer walks the typed call graph from every function
// declared in internal/modelcheck (its in-package test drivers
// included, and following goroutine spawns — spawned code still
// executes under replay) and flags those nondeterminism sources in any
// reachable function.
//
// internal/obs is exempt: observability timestamps and span IDs are
// deliberately wall-clock and never enter replay fingerprints — the
// checker compares pool state, not telemetry. Elsewhere,
// `//determguard:ok <reason>` on the offending line waives a finding
// (for checker-owned nondeterminism like the explicitly seeded
// DefaultEnv fallback); modelcheck-reachable production code should be
// fixed to use the injected clock instead.
var DetermGuard = &Analyzer{
	Name: "determguard",
	Doc:  "no wall-clock, global rand, sleeps, or order-escaping map ranges in code reachable from internal/modelcheck",
	Run:  runDetermGuard,
}

// determTimeFuncs are the package-time entry points that read or
// depend on the wall clock.
var determTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

// determRandExempt are the math/rand constructors that produce a
// locally seeded source — the deterministic alternative this analyzer
// pushes toward — as opposed to draws from the global source.
var determRandExempt = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewZipf":    true,
	"NewChaCha8": true,
}

func runDetermGuard(p *Pass) {
	if p.Pkg.Info == nil {
		return
	}
	if strings.Contains(p.Pkg.Path, "internal/obs") {
		return
	}
	reach := determReachable(p.Prog)
	for fd, fn := range p.fileFuncs() {
		if !reach[fn] || fd.Body == nil {
			continue
		}
		checkDeterminism(p, fd)
	}
}

// determReachable computes (once per program) the set of functions
// reachable from any internal/modelcheck declaration, goroutine spawns
// included.
func determReachable(prog *Program) map[*types.Func]bool {
	if prog.reachMemo == nil {
		prog.reachMemo = map[string]map[*types.Func]bool{}
	}
	if r, ok := prog.reachMemo["determguard"]; ok {
		return r
	}
	cg := prog.CallGraph()
	var roots []*types.Func
	for _, fn := range cg.Funcs() {
		if pkg := cg.PackageOf(fn); pkg != nil && strings.Contains(pkg.Path, "internal/modelcheck") {
			roots = append(roots, fn)
		}
	}
	r := cg.Reachable(roots, false)
	prog.reachMemo["determguard"] = r
	return r
}

func checkDeterminism(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	report := func(n ast.Node, format string, args ...any) {
		line := p.Pkg.Fset.Position(n.Pos()).Line
		if directiveAtLine(p, "determguard:ok", line) {
			return
		}
		p.Reportf(n.Pos(), format, args...)
	}
	// sortAfter records positions of sort calls so an order-escaping
	// map range can be discharged by a later sort in the same function.
	var sortCalls []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := StaticCallee(info, call)
		if fn != nil && fn.Pkg() != nil &&
			(fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices") {
			sortCalls = append(sortCalls, call)
		}
		return true
	})
	sortedAfter := func(n ast.Node) bool {
		for _, s := range sortCalls {
			if s.Pos() > n.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := info.Uses[n.Sel]
			if !pkgScoped(obj) {
				return true
			}
			if fromPkg(obj, "time") && determTimeFuncs[obj.Name()] {
				report(n,
					"time.%s in modelcheck-replayed code: wall-clock dependence breaks replay determinism; route through the injected clock (//determguard:ok <reason> to waive)",
					obj.Name())
			}
			if obj != nil && obj.Pkg() != nil &&
				(obj.Pkg().Path() == "math/rand" || obj.Pkg().Path() == "math/rand/v2") {
				if _, isFn := obj.(*types.Func); isFn && !determRandExempt[obj.Name()] {
					report(n,
						"math/rand.%s in modelcheck-replayed code: the global source breaks replay determinism; draw from an injected seeded source (//determguard:ok <reason> to waive)",
						obj.Name())
				}
			}
		case *ast.RangeStmt:
			t := p.typeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if mapOrderEscapes(info, n) && !sortedAfter(n) {
				report(n,
					"map iteration order escapes this loop in modelcheck-replayed code: collect and sort before use (//determguard:ok <reason> to waive)")
			}
		}
		return true
	})
}

// mapOrderEscapes reports whether the range body lets iteration order
// reach state: appending to a slice, sending on a channel, or
// returning the ranged key/value from inside the loop all preserve
// encounter order, which over a map is nondeterministic. Writes keyed
// by the ranged key, pure reductions (sums, max), and early returns of
// unrelated values stay order-independent and are not flagged.
func mapOrderEscapes(info *types.Info, rng *ast.RangeStmt) bool {
	// The loop's own key/value objects: a return that surfaces one of
	// them surfaces iteration order.
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
			if obj := info.Uses[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	usesLoopVar := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && (loopVars[info.Uses[id]]) {
				found = true
			}
			return !found
		})
		return found
	}
	escapes := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			escapes = true
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesLoopVar(res) {
					escapes = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				escapes = true
			}
		}
		return !escapes
	})
	return escapes
}
