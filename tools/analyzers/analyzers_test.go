package analyzers_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/tools/analyzers"
	"repro/tools/analyzers/analyzertest"
)

// The fixture packages under testdata/src seed one violation per rule
// (plus conforming code that must stay silent); the go tool never
// builds them, only these tests read them.

func TestNoDial(t *testing.T) {
	analyzertest.Run(t, analyzers.NoDial, "testdata/src/nodial")
}

func TestObsGuard(t *testing.T) {
	analyzertest.Run(t, analyzers.ObsGuard, "testdata/src/obsguard")
}

func TestMsgSwitch(t *testing.T) {
	analyzertest.Run(t, analyzers.MsgSwitch, "testdata/src/msgswitch")
}

func TestLockGuard(t *testing.T) {
	analyzertest.Run(t, analyzers.LockGuard, "testdata/src/lockguard")
}

func TestTraceCtx(t *testing.T) {
	// The internal/ path placement is load-bearing: the analyzer only
	// fires inside internal/ packages.
	analyzertest.Run(t, analyzers.TraceCtx, "testdata/src/tracectx/internal/app")
}

func TestFsyncGuard(t *testing.T) {
	// Two fixture packages: the general internal/ rule and the
	// stricter internal/store rule (path placement is load-bearing —
	// the analyzer keys on the package directory).
	analyzertest.Run(t, analyzers.FsyncGuard, "testdata/src/fsyncguard/internal/app")
	analyzertest.Run(t, analyzers.FsyncGuard, "testdata/src/fsyncguard/internal/store")
}

func TestEpochGuard(t *testing.T) {
	// internal/ placement is load-bearing: the analyzer only fires
	// inside internal/ packages.
	analyzertest.Run(t, analyzers.EpochGuard, "testdata/src/epochguard/internal/app")
}

func TestReplyGuard(t *testing.T) {
	analyzertest.Run(t, analyzers.ReplyGuard, "testdata/src/replyguard/internal/app")
}

func TestCondGuard(t *testing.T) {
	analyzertest.Run(t, analyzers.CondGuard, "testdata/src/condguard")
}

func TestDetermGuard(t *testing.T) {
	// Two packages loaded as one program: the driver package's path
	// makes it the reachability root, the violations live in the app
	// package it replays — the finding is cross-package by design.
	analyzertest.RunDirs(t, analyzers.DetermGuard,
		"testdata/src/determguard/internal/modelcheck",
		"testdata/src/determguard/internal/app")
}

func TestGoroGuard(t *testing.T) {
	analyzertest.Run(t, analyzers.GoroGuard, "testdata/src/goroguard/internal/app")
}

func TestSendGuard(t *testing.T) {
	analyzertest.Run(t, analyzers.SendGuard, "testdata/src/sendguard/internal/app")
}

// TestReplyGuardPartition checks that replyguard's request/reply
// classification partitions the protocol vocabulary exactly: every
// message type is either a request or a reply, never both, never
// neither. ProtocolMsgTypes is itself synced against protocol.go by
// TestMsgTypeListInSync, so drift in protocol.go fails one of the two.
func TestReplyGuardPartition(t *testing.T) {
	class := map[string]string{}
	for _, name := range analyzers.RequestMsgTypes {
		class[name] = "request"
	}
	for _, name := range analyzers.ReplyMsgTypes {
		if prev, dup := class[name]; dup {
			t.Errorf("%s classified as both %s and reply", name, prev)
		}
		class[name] = "reply"
	}
	for _, name := range analyzers.ProtocolMsgTypes {
		if _, ok := class[name]; !ok {
			t.Errorf("%s is in ProtocolMsgTypes but neither request- nor reply-class", name)
		}
		delete(class, name)
	}
	for name, kind := range class {
		t.Errorf("%s classified as %s but is not in ProtocolMsgTypes", name, kind)
	}
}

// TestMsgTypeListInSync re-derives the message-type vocabulary from
// internal/protocol/protocol.go's syntax and compares it with the
// analyzer's hardcoded copy, so adding a message type without teaching
// msgswitch about it fails here.
func TestMsgTypeListInSync(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "../../internal/protocol/protocol.go", nil, 0)
	if err != nil {
		t.Fatalf("parse protocol.go: %v", err)
	}
	var fromSource []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if id, ok := vs.Type.(*ast.Ident); !ok || id.Name != "MsgType" {
				continue
			}
			for _, name := range vs.Names {
				fromSource = append(fromSource, name.Name)
			}
		}
	}
	if len(fromSource) == 0 {
		t.Fatal("no MsgType constants found in protocol.go")
	}
	want := append([]string(nil), fromSource...)
	got := append([]string(nil), analyzers.ProtocolMsgTypes...)
	sort.Strings(want)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("ProtocolMsgTypes has %d entries, protocol.go declares %d:\ngot  %v\nwant %v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ProtocolMsgTypes mismatch: got %q, want %q", got[i], want[i])
		}
	}
}

// TestRepoHonorsInvariants runs every analyzer over the repository
// itself: the invariants hold on the code that ships, not just on the
// fixtures.
func TestRepoHonorsInvariants(t *testing.T) {
	prog, err := analyzers.Load([]string{"../.."})
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	for _, f := range analyzers.Run(analyzers.All(), prog) {
		t.Errorf("%s", f)
	}
}

// TestTypedLoadRepo is the typed-loading harness check: the whole
// module must load and type-check cleanly (a type error would make
// every typed analyzer unsound — the driver refuses to run on one),
// and two runs over the same program must produce byte-identical,
// position-stable diagnostics.
func TestTypedLoadRepo(t *testing.T) {
	prog, err := analyzers.Load([]string{"../.."})
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	if len(prog.Pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(prog.Pkgs))
	}
	for _, pkg := range prog.Pkgs {
		if pkg.Info == nil || pkg.Types == nil {
			t.Errorf("%s: loaded without type information", pkg.Path)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
	}
	render := func(fs []analyzers.Finding) []string {
		out := make([]string, len(fs))
		for i, f := range fs {
			out[i] = f.String()
		}
		return out
	}
	first := render(analyzers.Run(analyzers.All(), prog))
	second := render(analyzers.Run(analyzers.All(), prog))
	if len(first) != len(second) {
		t.Fatalf("unstable diagnostics: %d findings then %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("diagnostic %d not position-stable:\n  first:  %s\n  second: %s", i, first[i], second[i])
		}
	}
}

// TestDesignDocAnalyzerTableInSync re-derives the analyzer roster from
// DESIGN.md §9's framework-v2 table and compares it with All(), both
// directions: an analyzer that runs but is undocumented, or a
// documented analyzer that does not run, fails `make lint-codes`.
func TestDesignDocAnalyzerTableInSync(t *testing.T) {
	raw, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	lines := strings.Split(string(raw), "\n")
	rowRe := regexp.MustCompile("^\\| `([a-z]+)` \\|")
	var documented []string
	inTable := false
	for _, line := range lines {
		if strings.HasPrefix(line, "| analyzer |") {
			inTable = true
			continue
		}
		if !inTable {
			continue
		}
		if m := rowRe.FindStringSubmatch(line); m != nil {
			documented = append(documented, m[1])
			continue
		}
		if strings.HasPrefix(line, "|---") {
			continue
		}
		break
	}
	if len(documented) == 0 {
		t.Fatal("no analyzer table found in DESIGN.md §9 (header `| analyzer |`)")
	}
	var running []string
	for _, a := range analyzers.All() {
		running = append(running, a.Name)
	}
	want := append([]string(nil), documented...)
	got := append([]string(nil), running...)
	sort.Strings(want)
	sort.Strings(got)
	if strings.Join(want, ",") != strings.Join(got, ",") {
		t.Fatalf("DESIGN.md analyzer table out of sync with All():\ndocumented %v\nrunning    %v", want, got)
	}
}
