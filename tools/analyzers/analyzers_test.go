package analyzers_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"testing"

	"repro/tools/analyzers"
	"repro/tools/analyzers/analyzertest"
)

// The fixture packages under testdata/src seed one violation per rule
// (plus conforming code that must stay silent); the go tool never
// builds them, only these tests read them.

func TestNoDial(t *testing.T) {
	analyzertest.Run(t, analyzers.NoDial, "testdata/src/nodial")
}

func TestObsGuard(t *testing.T) {
	analyzertest.Run(t, analyzers.ObsGuard, "testdata/src/obsguard")
}

func TestMsgSwitch(t *testing.T) {
	analyzertest.Run(t, analyzers.MsgSwitch, "testdata/src/msgswitch")
}

func TestLockGuard(t *testing.T) {
	analyzertest.Run(t, analyzers.LockGuard, "testdata/src/lockguard")
}

func TestTraceCtx(t *testing.T) {
	// The internal/ path placement is load-bearing: the analyzer only
	// fires inside internal/ packages.
	analyzertest.Run(t, analyzers.TraceCtx, "testdata/src/tracectx/internal/app")
}

func TestFsyncGuard(t *testing.T) {
	// Two fixture packages: the general internal/ rule and the
	// stricter internal/store rule (path placement is load-bearing —
	// the analyzer keys on the package directory).
	analyzertest.Run(t, analyzers.FsyncGuard, "testdata/src/fsyncguard/internal/app")
	analyzertest.Run(t, analyzers.FsyncGuard, "testdata/src/fsyncguard/internal/store")
}

func TestEpochGuard(t *testing.T) {
	// internal/ placement is load-bearing: the analyzer only fires
	// inside internal/ packages.
	analyzertest.Run(t, analyzers.EpochGuard, "testdata/src/epochguard/internal/app")
}

func TestReplyGuard(t *testing.T) {
	analyzertest.Run(t, analyzers.ReplyGuard, "testdata/src/replyguard/internal/app")
}

// TestReplyGuardPartition checks that replyguard's request/reply
// classification partitions the protocol vocabulary exactly: every
// message type is either a request or a reply, never both, never
// neither. ProtocolMsgTypes is itself synced against protocol.go by
// TestMsgTypeListInSync, so drift in protocol.go fails one of the two.
func TestReplyGuardPartition(t *testing.T) {
	class := map[string]string{}
	for _, name := range analyzers.RequestMsgTypes {
		class[name] = "request"
	}
	for _, name := range analyzers.ReplyMsgTypes {
		if prev, dup := class[name]; dup {
			t.Errorf("%s classified as both %s and reply", name, prev)
		}
		class[name] = "reply"
	}
	for _, name := range analyzers.ProtocolMsgTypes {
		if _, ok := class[name]; !ok {
			t.Errorf("%s is in ProtocolMsgTypes but neither request- nor reply-class", name)
		}
		delete(class, name)
	}
	for name, kind := range class {
		t.Errorf("%s classified as %s but is not in ProtocolMsgTypes", name, kind)
	}
}

// TestMsgTypeListInSync re-derives the message-type vocabulary from
// internal/protocol/protocol.go's syntax and compares it with the
// analyzer's hardcoded copy, so adding a message type without teaching
// msgswitch about it fails here.
func TestMsgTypeListInSync(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "../../internal/protocol/protocol.go", nil, 0)
	if err != nil {
		t.Fatalf("parse protocol.go: %v", err)
	}
	var fromSource []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if id, ok := vs.Type.(*ast.Ident); !ok || id.Name != "MsgType" {
				continue
			}
			for _, name := range vs.Names {
				fromSource = append(fromSource, name.Name)
			}
		}
	}
	if len(fromSource) == 0 {
		t.Fatal("no MsgType constants found in protocol.go")
	}
	want := append([]string(nil), fromSource...)
	got := append([]string(nil), analyzers.ProtocolMsgTypes...)
	sort.Strings(want)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("ProtocolMsgTypes has %d entries, protocol.go declares %d:\ngot  %v\nwant %v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ProtocolMsgTypes mismatch: got %q, want %q", got[i], want[i])
		}
	}
}

// TestRepoHonorsInvariants runs every analyzer over the repository
// itself: the invariants hold on the code that ships, not just on the
// fixtures.
func TestRepoHonorsInvariants(t *testing.T) {
	pkgs, err := analyzers.Load([]string{"../.."})
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	for _, f := range analyzers.Run(analyzers.All(), pkgs) {
		t.Errorf("%s", f)
	}
}
