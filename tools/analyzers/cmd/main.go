// Command cmd drives the repository's custom static analyzers (nodial,
// obsguard, msgswitch) over package directories, printing findings as
// file:line:col and exiting non-zero when any invariant is violated.
// `make verify` runs it over ./... alongside go vet.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/tools/analyzers"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: analyzers [dir ...]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	pkgs, err := analyzers.Load(roots)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyzers: %v\n", err)
		os.Exit(2)
	}
	findings := analyzers.Run(analyzers.All(), pkgs)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
