// Command cmd drives the repository's custom static analyzers over
// package directories, printing findings as file:line:col and exiting
// non-zero when any invariant is violated. The whole tree is loaded
// and type-checked once; every analyzer shares the typed program and
// its call graph. `make lint` (inside `make verify`) runs it over
// ./... alongside go vet.
//
// Flags:
//
//	-list    emit machine-readable `file:line: code` lines only (for
//	         `make lint-fix-list`), no summary
//
// The per-analyzer summary on stderr shows name, files visited,
// findings and wall time; the total is asserted against a 30s budget
// so the typed framework can never quietly make `make verify`
// unbearable.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/tools/analyzers"
)

// lintBudget is the hard wall-time ceiling for a full run: typed
// loading plus all analyzers. Exceeding it is itself a failure.
const lintBudget = 30 * time.Second

func main() {
	listOnly := flag.Bool("list", false, "emit file:line: code lines only")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: analyzers [-list] [dir ...]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}

	start := time.Now()
	prog, err := analyzers.Load(roots)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyzers: %v\n", err)
		os.Exit(2)
	}
	typeErrs := 0
	for _, pkg := range prog.Pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "analyzers: type error: %v\n", terr)
			typeErrs++
		}
	}
	if typeErrs > 0 {
		fmt.Fprintf(os.Stderr, "analyzers: %d type errors — typed analysis would be unsound, fix the build first\n", typeErrs)
		os.Exit(2)
	}
	loadTime := time.Since(start)

	findings, stats := analyzers.RunTimed(analyzers.All(), prog)
	total := time.Since(start)

	if *listOnly {
		for _, f := range findings {
			fmt.Printf("%s:%d: %s\n", f.Pos.Filename, f.Pos.Line, f.Analyzer)
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
		return
	}

	for _, f := range findings {
		fmt.Println(f)
	}
	fmt.Fprintf(os.Stderr, "analyzers: loaded %d packages in %v\n", len(prog.Pkgs), loadTime.Round(time.Millisecond))
	for _, s := range stats {
		fmt.Fprintf(os.Stderr, "  %-12s %4d files  %3d findings  %6dms\n",
			s.Name, s.Files, s.Findings, s.Elapsed.Milliseconds())
	}
	fmt.Fprintf(os.Stderr, "analyzers: total %v (budget %v)\n", total.Round(time.Millisecond), lintBudget)
	if total > lintBudget {
		fmt.Fprintf(os.Stderr, "analyzers: exceeded the %v lint budget\n", lintBudget)
		os.Exit(1)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
