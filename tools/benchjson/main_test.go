package main

import (
	"strings"
	"testing"
)

func TestParseRun(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: repro
cpu: Imaginary CPU @ 1GHz
BenchmarkMatch-8    123456    9876 ns/op    120 B/op    3 allocs/op
BenchmarkNoAlloc    10        500.5 ns/op
PASS
ok  	repro	1.234s
some stray log line
`
	rep, err := parseRun(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "repro" {
		t.Errorf("header parsed wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkMatch-8" || b.Iterations != 123456 ||
		b.NsPerOp != 9876 || b.BytesPerOp != 120 || b.AllocsOp != 3 {
		t.Errorf("benchmark 0 parsed wrong: %+v", b)
	}
	if rep.Benchmarks[1].NsPerOp != 500.5 {
		t.Errorf("benchmark 1 ns/op = %v, want 500.5", rep.Benchmarks[1].NsPerOp)
	}
}

func TestRunCheck(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkRetired", NsPerOp: 1000},
	}}
	cases := []struct {
		name   string
		fresh  Report
		tol    float64
		wantRe int
	}{
		{"within tolerance", Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 1150}}}, 0.20, 0},
		{"at the boundary passes", Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 1200}}}, 0.20, 0},
		{"past the boundary fails", Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 1201}}}, 0.20, 1},
		{"speedup passes", Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 10}}}, 0.20, 0},
		{"new benchmark without baseline passes", Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkNew", NsPerOp: 1e9}}}, 0.20, 0},
		{"multiple regressions counted", Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 2000},
			{Name: "BenchmarkB", NsPerOp: 3000}}}, 0.20, 2},
		{"tighter tolerance", Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 1100}}}, 0.05, 1},
		{"min of repeated samples passes", Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 5000},
			{Name: "BenchmarkA", NsPerOp: 1100}}}, 0.20, 0},
		{"regression reproduced across samples fails", Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 5000},
			{Name: "BenchmarkA", NsPerOp: 4000}}}, 0.20, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, report := runCheck(base, tc.fresh, tc.tol)
			if got != tc.wantRe {
				t.Errorf("regressions = %d, want %d\n%s", got, tc.wantRe, report)
			}
			if tc.wantRe > 0 && !strings.Contains(report, "REGRESSION") {
				t.Errorf("report does not flag the regression:\n%s", report)
			}
		})
	}
}
