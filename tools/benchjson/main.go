// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so benchmark baselines can be checked in
// and diffed mechanically (the Makefile's `bench` target pipes the
// matchmaker/classad hot paths through it into
// BENCH_matchmaker.json).
//
// Input lines it understands:
//
//	goos: linux
//	goarch: amd64
//	pkg: repro
//	cpu: ...
//	BenchmarkMatch-8    123456    9876 ns/op    120 B/op    3 allocs/op
//
// Everything else (PASS, ok, test log noise) is ignored, so the tool
// is safe to leave in any pipeline.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// Report is the whole document: the environment header `go test`
// prints, then every benchmark in input order.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs (ns/op, B/op, allocs/op).
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsOp = int64(v)
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}
