// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so benchmark baselines can be checked in
// and diffed mechanically (the Makefile's `bench` target pipes the
// matchmaker/classad hot paths through it into
// BENCH_matchmaker.json).
//
// Input lines it understands:
//
//	goos: linux
//	goarch: amd64
//	pkg: repro
//	cpu: ...
//	BenchmarkMatch-8    123456    9876 ns/op    120 B/op    3 allocs/op
//
// Everything else (PASS, ok, test log noise) is ignored, so the tool
// is safe to leave in any pipeline.
//
// With -check <baseline.json> the tool becomes a regression gate: it
// compares the fresh run against the committed baseline and exits
// non-zero when any benchmark present in both slowed down by more
// than -tolerance (default 20% ns/op). The Makefile's `bench-check`
// target wires this into CI-style verification.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// Report is the whole document: the environment header `go test`
// prints, then every benchmark in input order.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	checkPath := flag.String("check", "", "baseline JSON to compare against; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op slowdown before -check fails")
	flag.Parse()

	rep, err := parseRun(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *checkPath != "" {
		data, err := os.ReadFile(*checkPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *checkPath, err)
			os.Exit(1)
		}
		regressions, report := runCheck(base, rep, *tolerance)
		fmt.Fprint(os.Stdout, report)
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseRun reads `go test -bench` output and collects the report.
func parseRun(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// runCheck compares a fresh run against a baseline. Benchmarks are
// matched by name (only names present in both runs are judged — new
// and retired benchmarks pass silently, so adding a benchmark never
// breaks the gate before its baseline is committed). When either run
// holds several samples of one name (`go test -count=N`), the minimum
// ns/op represents it — min-of-N is the standard noise floor, so a
// regression must reproduce across every sample to be flagged. It
// returns the regression count and a human-readable report.
func runCheck(base, fresh Report, tolerance float64) (regressions int, report string) {
	baseline := minByName(base.Benchmarks)
	var sb strings.Builder
	compared := 0
	for _, b := range minSamples(fresh.Benchmarks) {
		old, ok := baseline[b.Name]
		if !ok || old.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := b.NsPerOp / old.NsPerOp
		verdict := "ok"
		if ratio > 1+tolerance {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(&sb, "%-12s %-50s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			verdict, b.Name, old.NsPerOp, b.NsPerOp, (ratio-1)*100)
	}
	fmt.Fprintf(&sb, "benchjson: %d compared, %d regressed (tolerance %+.0f%%)\n",
		compared, regressions, tolerance*100)
	return regressions, sb.String()
}

// minByName indexes benchmarks by name, keeping the fastest sample.
func minByName(bs []Benchmark) map[string]Benchmark {
	m := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		if old, ok := m[b.Name]; !ok || b.NsPerOp < old.NsPerOp {
			m[b.Name] = b
		}
	}
	return m
}

// minSamples collapses repeated samples of one benchmark to the
// fastest, preserving first-appearance order.
func minSamples(bs []Benchmark) []Benchmark {
	m := minByName(bs)
	out := make([]Benchmark, 0, len(m))
	seen := make(map[string]bool, len(m))
	for _, b := range bs {
		if !seen[b.Name] {
			seen[b.Name] = true
			out = append(out, m[b.Name])
		}
	}
	return out
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs (ns/op, B/op, allocs/op).
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsOp = int64(v)
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}
