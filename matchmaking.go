// Package matchmaking is a Go implementation of the classified-
// advertisement (classad) matchmaking framework of Raman, Livny and
// Solomon, "Matchmaking: Distributed Resource Management for High
// Throughput Computing" (HPDC 1998) — the resource management
// architecture of the Condor high-throughput computing system.
//
// The package is a facade over the implementation packages:
//
//   - the classad language: Parse, ParseExpr, Ad, Expr, Value — a
//     semi-structured data model that folds the query language into
//     the data (constraints are attributes), with three-valued logic
//     over undefined/error values;
//   - pairwise matching: Match, EvalConstraint, EvalRank — the
//     symmetric bilateral match of paper §3.2;
//   - the matchmaker: NewMatchmaker — negotiation cycles with rank
//     selection, fair share from past usage, ad aggregation, gang
//     (co-allocation) matching, and match-failure analysis;
//   - the agents and pool daemons: NewResource, NewCustomer,
//     NewManager, NewResourceDaemon, NewCustomerDaemon — advertising,
//     match notification and claiming over TCP, with authorization
//     tickets and optional HMAC challenge-response;
//   - the simulation substrate: NewSimulation — a deterministic
//     discrete-event cluster for pool-scale experiments, plus the
//     conventional queue-scheduler baseline (NewQueueScheduler).
//
// Quick start:
//
//	machine := matchmaking.MustParse(matchmaking.Figure1Source)
//	job := matchmaking.MustParse(matchmaking.Figure2Source)
//	res := matchmaking.Match(job, machine)
//	fmt.Println(res.Matched, res.LeftRank, res.RightRank)
package matchmaking

import (
	"repro/internal/agent"
	"repro/internal/baseline"
	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/pool"
	"repro/internal/remote"
	"repro/internal/sim"
)

// ---- classad language ----

// Ad is a classified advertisement: an ordered, case-insensitive
// mapping from attribute names to expressions.
type Ad = classad.Ad

// Expr is a parsed classad expression.
type Expr = classad.Expr

// Value is the result of evaluating an expression: integer, real,
// string, boolean, undefined, error, list, or nested ad.
type Value = classad.Value

// Env supplies time and randomness to evaluation.
type Env = classad.Env

// MatchResult reports a pairwise match test.
type MatchResult = classad.MatchResult

// SyntaxError is a lexical or parse failure.
type SyntaxError = classad.SyntaxError

// NewAd returns an empty classad.
func NewAd() *Ad { return classad.NewAd() }

// Parse parses a classad in bracketed or bare attribute-list form.
func Parse(src string) (*Ad, error) { return classad.Parse(src) }

// MustParse is Parse that panics on error.
func MustParse(src string) *Ad { return classad.MustParse(src) }

// ParseMulti parses whitespace-separated bracketed ads.
func ParseMulti(src string) ([]*Ad, error) { return classad.ParseMulti(src) }

// ParseExpr parses a single expression.
func ParseExpr(src string) (Expr, error) { return classad.ParseExpr(src) }

// MustParseExpr is ParseExpr that panics on error.
func MustParseExpr(src string) Expr { return classad.MustParseExpr(src) }

// EvalString parses and evaluates an expression against an ad.
func EvalString(src string, ad *Ad) (Value, error) { return classad.EvalString(src, ad) }

// Match tests two ads for bilateral compatibility and evaluates their
// mutual ranks.
func Match(left, right *Ad) MatchResult { return classad.Match(left, right) }

// MatchEnv is Match with an explicit environment.
func MatchEnv(left, right *Ad, env *Env) MatchResult { return classad.MatchEnv(left, right, env) }

// EvalConstraint evaluates a's constraint against other; only a result
// of true satisfies it.
func EvalConstraint(a, other *Ad, env *Env) bool { return classad.EvalConstraint(a, other, env) }

// EvalRank evaluates a's Rank of other; non-numeric results count 0.
func EvalRank(a, other *Ad, env *Env) float64 { return classad.EvalRank(a, other, env) }

// MatchesQuery is the one-way match used by status tools.
func MatchesQuery(query, candidate *Ad, env *Env) bool {
	return classad.MatchesQuery(query, candidate, env)
}

// FixedEnv returns a deterministic environment for tests and
// simulations.
func FixedEnv(now, seed int64) *Env { return classad.FixedEnv(now, seed) }

// PartialEval rewrites an expression with everything determined by
// self folded to literals, leaving other.* and unresolvable names
// symbolic — the residual requirement tooling shows administrators.
// The rewriting is exact: the residual evaluates identically to the
// original in any future match involving self.
func PartialEval(e Expr, self *Ad, env *Env) Expr {
	return classad.PartialEval(e, self, env)
}

// The paper's example ads.
const (
	// Figure1Source is the workstation ad of the paper's Figure 1.
	Figure1Source = classad.Figure1Source
	// Figure2Source is the job ad of the paper's Figure 2.
	Figure2Source = classad.Figure2Source
)

// Protocol attribute names.
const (
	AttrConstraint   = classad.AttrConstraint
	AttrRequirements = classad.AttrRequirements
	AttrRank         = classad.AttrRank
	AttrType         = classad.AttrType
	AttrName         = classad.AttrName
	AttrOwner        = classad.AttrOwner
	AttrContact      = classad.AttrContact
	AttrTicket       = classad.AttrTicket
)

// ---- matchmaker ----

// Matchmaker runs negotiation cycles.
type Matchmaker = matchmaker.Matchmaker

// MatchmakerConfig tunes the negotiation algorithm.
type MatchmakerConfig = matchmaker.Config

// MatchPair is one request/offer pairing from a cycle.
type MatchPair = matchmaker.Match

// Analysis explains a request's match prospects.
type Analysis = matchmaker.Analysis

// GangMatch is a co-allocation assignment.
type GangMatch = matchmaker.GangMatch

// NewMatchmaker builds a matchmaker.
func NewMatchmaker(cfg MatchmakerConfig) *Matchmaker { return matchmaker.New(cfg) }

// Analyze explains why (or whether) a request matches a pool.
func Analyze(req *Ad, offers []*Ad, env *Env) *Analysis {
	return matchmaker.Analyze(req, offers, env)
}

// MatchGang solves a nested-classad co-allocation request.
func MatchGang(req *Ad, offers []*Ad, env *Env) (GangMatch, bool) {
	return matchmaker.MatchGang(req, offers, env)
}

// BestOffer picks the offer a single request should be introduced to.
func BestOffer(req *Ad, offers []*Ad, env *Env) (int, MatchPair) {
	return matchmaker.BestOffer(req, offers, env)
}

// ---- agents, collector, pool ----

// Resource is a Resource-owner Agent.
type Resource = agent.Resource

// Customer is a Customer Agent with a job queue.
type Customer = agent.Customer

// Claim is an established working relationship.
type Claim = agent.Claim

// Store is the collector's advertisement store.
type Store = collector.Store

// CollectorClient talks to a collector daemon.
type CollectorClient = collector.Client

// Manager is the pool manager (collector + negotiator).
type Manager = pool.Manager

// ManagerConfig tunes a Manager.
type ManagerConfig = pool.ManagerConfig

// ResourceDaemon serves the claiming protocol for an RA.
type ResourceDaemon = pool.ResourceDaemon

// CustomerDaemon receives match notifications and claims for a CA.
type CustomerDaemon = pool.CustomerDaemon

// NewResource builds a Resource-owner Agent around a policy ad.
func NewResource(base *Ad, env *Env) *Resource { return agent.NewResource(base, env) }

// NewCustomer builds a Customer Agent for an owner.
func NewCustomer(owner string, env *Env) *Customer { return agent.NewCustomer(owner, env) }

// NewStore builds an advertisement store.
func NewStore(env *Env) *Store { return collector.New(env) }

// NewManager builds a pool manager.
func NewManager(cfg ManagerConfig) *Manager { return pool.NewManager(cfg) }

// NewResourceDaemon wraps an RA in a TCP daemon.
func NewResourceDaemon(ra *Resource, collectorAddr string, lifetime int64, logf func(string, ...any)) *ResourceDaemon {
	return pool.NewResourceDaemon(ra, collectorAddr, lifetime, logf)
}

// NewCustomerDaemon wraps a CA in a TCP daemon.
func NewCustomerDaemon(ca *Customer, collectorAddr string, lifetime int64, logf func(string, ...any)) *CustomerDaemon {
	return pool.NewCustomerDaemon(ca, collectorAddr, lifetime, logf)
}

// ---- simulation substrate and baseline ----

// Simulation is a configured discrete-event pool experiment.
type Simulation = sim.Simulation

// SimConfig assembles a simulation.
type SimConfig = sim.Config

// PoolSpec configures the synthetic machine population.
type PoolSpec = sim.PoolSpec

// JobSpec configures the synthetic workload.
type JobSpec = sim.JobSpec

// SimMetrics aggregates a run.
type SimMetrics = sim.Metrics

// SimScheduler decides cycle assignments (matchmaker or baseline).
type SimScheduler = sim.Scheduler

// NewSimulation builds a simulation.
func NewSimulation(cfg SimConfig) *Simulation { return sim.New(cfg) }

// NewQueueScheduler builds the conventional queue baseline
// (per-architecture queues over dedicated machines).
func NewQueueScheduler(env *Env) SimScheduler { return baseline.New(env) }

// NewIntrusiveQueueScheduler builds the policy-blind baseline variant.
func NewIntrusiveQueueScheduler(env *Env) SimScheduler { return baseline.NewIntrusive(env) }

// ---- remote execution substrate (WantRemoteSyscalls/WantCheckpoint) ----

// FileStore is the shadow-side file system: the customer's files.
type FileStore = remote.FileStore

// Shadow serves a running job's remote syscalls and checkpoints.
type Shadow = remote.Shadow

// RemoteJobSpec describes a synthetic remote-syscall job.
type RemoteJobSpec = remote.JobSpec

// RunResult reports one starter session.
type RunResult = remote.RunResult

// NewFileStore returns an empty shadow-side file store.
func NewFileStore() *FileStore { return remote.NewFileStore() }

// NewShadow builds a shadow over a file store.
func NewShadow(fs *FileStore, logf func(string, ...any)) *Shadow {
	return remote.NewShadow(fs, logf)
}

// RunStarter executes a job against the shadow at shadowAddr until it
// completes or cancel closes (eviction); later calls resume from the
// last checkpoint.
func RunStarter(shadowAddr string, spec RemoteJobSpec, cancel <-chan struct{}) (RunResult, error) {
	return remote.Run(shadowAddr, spec, cancel)
}
